//! The real-thread Δ-stepping engine: the complete epoch loop of
//! [`super::Engine`] — bucket collectives, repeated inner-short phases,
//! the per-bucket §III-C push/pull decision and the τ-triggered
//! Bellman-Ford tail — running one OS thread per rank over
//! [`sssp_comm::threaded::RankCtx`].
//!
//! Both backends call the same rank-local kernels (`super::kernels`), so
//! the relaxation logic exists exactly once; this module contributes only
//! the SPMD driver: which kernel runs when, and how its messages travel.
//! Because channel inboxes are delivered in source-rank order (matching
//! the simulated transpose) and sender-side coalescing leaves each lane
//! sorted by `(target, nd)`, a threaded run applies the *identical*
//! message sequence in the *identical* order as a simulated run — final
//! distances are bit-identical, which the differential proptests pin.
//!
//! Collectives use only the `sssp_comm::threaded` rendezvous primitives;
//! everything else is rank-private state.

use std::sync::Arc;
use std::time::Instant;

use sssp_comm::cost::MachineModel;
use sssp_comm::exchange::{pack_sorted_run, shrink_oversized};
use sssp_comm::packet::PacketConfig;
use sssp_comm::stats::StepStats;
use sssp_comm::threaded::{run_threaded_with, RankCtx, SPARE_CAPACITY_FLOOR};
use sssp_dist::{DistGraph, LocalGraph};
use sssp_graph::VertexId;

use crate::config::{DirectionPolicy, LongPhaseMode, SsspConfig};
use crate::instrument::{BucketRecord, PhaseKind, PhaseRecord, RunStats, RunTrace};
use crate::policy::{EpochWindow, PolicyDispatch, SteppingPolicy, WindowRule};
use crate::state::{RankState, INF};

use super::record::{merge_rank_traces, NoopRecorder, Recorder};
use super::{decide, dedup_seeds, kernels, resolved_pi, RelaxMsg, ReqMsg, RELAX_BYTES, REQ_BYTES};

/// Messages of the threaded engine's single channel world: relax proposals
/// and pull requests share one wire type (a superstep carries only one of
/// the two kinds, exactly as the simulated engine keeps separate buffer
/// pools per kind).
enum Wire {
    /// A relaxation proposal.
    Relax(RelaxMsg),
    /// A pull request.
    Req(ReqMsg),
}

impl Wire {
    #[inline]
    fn relax(&self) -> RelaxMsg {
        match self {
            Wire::Relax(m) => *m,
            // A request inside a relax superstep breaks the SPMD protocol;
            // aborting the run is the correct response.
            // sssp-lint: allow(no-panic-hot-path): SPMD protocol contract
            Wire::Req(_) => panic!("pull request delivered in a relax superstep"),
        }
    }

    #[inline]
    fn req(&self) -> ReqMsg {
        match self {
            Wire::Req(m) => *m,
            // sssp-lint: allow(no-panic-hot-path): SPMD protocol contract
            Wire::Relax(_) => panic!("relaxation delivered in a request superstep"),
        }
    }
}

/// Resident per-rank engine state a serving layer keeps warm between
/// queries: the [`RankState`] (distances, buckets, frontier bitsets), the
/// engine-side outbox lanes and inboxes, and the channel transport spares.
/// One scratch belongs to exactly one in-flight query at a time; handing it
/// to [`threaded_sssp_query`] runs the query without re-allocating any of
/// the pooled structures (the state is `reset`, not rebuilt). A scratch is
/// graph-shape-specific only through per-rank vertex counts: if the graph
/// changes shape the affected rank states are rebuilt transparently, but a
/// serving layer should still discard scratches on graph rebuild so stale
/// pool sizes do not linger.
#[derive(Default)]
pub struct EngineScratch {
    ranks: Vec<RankScratch>,
}

/// One rank's share of an [`EngineScratch`].
#[derive(Default)]
struct RankScratch {
    st: Option<RankState>,
    out: Vec<Vec<Wire>>,
    inbox: Vec<Wire>,
    req_inbox: Vec<Wire>,
    spares: Vec<Vec<Wire>>,
}

impl EngineScratch {
    /// Empty scratch for a `num_ranks`-rank world; every pooled structure
    /// is created lazily by the first query that runs on it.
    pub fn new(num_ranks: usize) -> Self {
        EngineScratch {
            ranks: (0..num_ranks).map(|_| RankScratch::default()).collect(),
        }
    }

    /// Capacity (in messages) of the largest buffer held anywhere in the
    /// scratch — outbox lanes, inboxes and transport spares across all
    /// ranks. Diagnostic for the pool-bound regression tests: after a
    /// query finishes, this is bounded by that query's own high-water mark
    /// (floored at the warm-pool minimum), not by the largest query ever
    /// run on the scratch.
    pub fn max_buffer_capacity(&self) -> usize {
        self.ranks
            .iter()
            .flat_map(|r| {
                r.out
                    .iter()
                    .map(Vec::capacity)
                    .chain(std::iter::once(r.inbox.capacity()))
                    .chain(std::iter::once(r.req_inbox.capacity()))
                    .chain(r.spares.iter().map(Vec::capacity))
            })
            .max()
            .unwrap_or(0)
    }
}

/// Result of a threaded run: final distances plus the transport counters
/// the wall-clock benchmark records.
#[derive(Debug, Clone)]
pub struct ThreadedSsspOutput {
    /// Final distances indexed by global vertex id (`u64::MAX` = unreached).
    pub distances: Vec<u64>,
    /// Relaxation messages that entered an exchange addressed to the
    /// sender's own rank (post-coalescing, all ranks summed). These never
    /// touch the wire; the simulated engine counts them separately, and so
    /// do we. Pull requests are not included.
    pub relax_local_msgs: u64,
    /// Relaxation messages that entered an exchange addressed to another
    /// rank (post-coalescing, all ranks summed) — the wire traffic. Pull
    /// requests are not included.
    pub relax_remote_msgs: u64,
    /// Relaxation messages removed by sender-side coalescing before the
    /// exchanges (all ranks summed).
    pub coalesced_msgs: u64,
    /// Epoch-select rounds the run performed (one `epoch.select`
    /// collective each, identical on every rank). A point-to-point query
    /// that terminates early performs strictly fewer rounds than the same
    /// query run to completion — the `serve_bench` superstep-savings gate
    /// compares exactly this counter.
    pub epochs: u64,
    /// True when the run stopped at its deadline instead of settling every
    /// bucket — the distance field is partially tentative and must not be
    /// served or cached as final.
    pub timed_out: bool,
}

impl ThreadedSsspOutput {
    /// All relaxation messages that entered an exchange, local and remote.
    pub fn relax_msgs_total(&self) -> u64 {
        self.relax_local_msgs + self.relax_remote_msgs
    }
}

/// Per-rank return value of the rank body.
struct RankResult {
    dist: Vec<u64>,
    relax_local_msgs: u64,
    relax_remote_msgs: u64,
    coalesced_msgs: u64,
    epochs: u64,
    timed_out: bool,
}

/// Wall-clock nanoseconds since `start`, saturated into a `u64` (580 years
/// of headroom — the cast can only be reached by a clock bug).
#[inline]
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Per-rank transport counters plus the epoch's pool high-water mark and
/// the query-level mark that survives the per-epoch resets.
struct Traffic {
    relax_local_msgs: u64,
    relax_remote_msgs: u64,
    coalesced_msgs: u64,
    hwm: usize,
    query_hwm: usize,
}

/// Run the configured SSSP algorithm from `root` with one OS thread per
/// rank. Distances are bit-identical to [`super::run_sssp`] under every
/// configuration; only wall-clock behavior (and the absence of the
/// simulated cost model) differs.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sssp_core::{threaded_delta_stepping, SsspConfig};
/// use sssp_comm::cost::MachineModel;
/// use sssp_dist::DistGraph;
/// use sssp_graph::{gen, CsrBuilder};
///
/// let csr = CsrBuilder::new().build(&gen::path(5, 3));
/// let dg = Arc::new(DistGraph::build(&csr, 2, 2));
/// let out = threaded_delta_stepping(&dg, 0, &SsspConfig::opt(25), &MachineModel::bgq_like());
/// assert_eq!(out.distances, vec![0, 3, 6, 9, 12]);
/// ```
pub fn threaded_delta_stepping(
    dg: &Arc<DistGraph>,
    root: VertexId,
    cfg: &SsspConfig,
    model: &MachineModel,
) -> ThreadedSsspOutput {
    threaded_sssp_seeded(dg, &[(root, 0)], cfg, model)
}

/// Fully general threaded entry point: start from arbitrary
/// `(vertex, distance)` seeds, mirroring [`super::run_sssp_seeded`]. A
/// vertex listed twice keeps its smallest seed distance; an empty seed
/// list is legal and yields all-INF distances — the same contract, and
/// bit-identical results, as the simulated backend.
pub fn threaded_sssp_seeded(
    dg: &Arc<DistGraph>,
    seeds: &[(VertexId, u64)],
    cfg: &SsspConfig,
    model: &MachineModel,
) -> ThreadedSsspOutput {
    let mut scratch = EngineScratch::new(dg.num_ranks());
    run_ranks_with(dg, seeds, None, None, cfg, model, &mut scratch, || {
        NoopRecorder
    })
    .0
}

/// Serving entry point: run one query over a **resident** graph, reusing
/// the per-rank engine state and buffer pools held in `scratch` instead of
/// rebuilding them. The first query on a fresh scratch allocates
/// everything; every later query resets the state in place (distances,
/// bucket ring, frontier stamps) and inherits the warmed pools, trimmed at
/// query end to the finishing query's own high-water mark.
///
/// `target` selects point-to-point mode: the epoch loop stops as soon as
/// the target's tentative distance can no longer improve (see the cutoff
/// collective in the rank body), so `distances[target]` is final but other
/// entries may still hold tentative values. With `target = None` the
/// result is bit-identical to a fresh [`threaded_sssp_seeded`] run — the
/// serving differential proptests pin exactly that.
pub fn threaded_sssp_query(
    dg: &Arc<DistGraph>,
    seeds: &[(VertexId, u64)],
    target: Option<VertexId>,
    cfg: &SsspConfig,
    model: &MachineModel,
    scratch: &mut EngineScratch,
) -> ThreadedSsspOutput {
    threaded_sssp_query_deadline(dg, seeds, target, None, cfg, model, scratch)
}

/// [`threaded_sssp_query`] with a wall-clock deadline: the epoch loop
/// checks the clock once per epoch through the `epoch.deadline` collective
/// (right after bucket selection, in the same slot as the point-to-point
/// cutoff) and stops with [`ThreadedSsspOutput::timed_out`] set once the
/// deadline has passed. The verdict is a collective, so every rank stops
/// at the same epoch — a timed-out run can never wedge a peer
/// mid-rendezvous. A timed-out distance field is partially tentative and
/// must not be cached or served as final.
pub fn threaded_sssp_query_deadline(
    dg: &Arc<DistGraph>,
    seeds: &[(VertexId, u64)],
    target: Option<VertexId>,
    deadline: Option<Instant>,
    cfg: &SsspConfig,
    model: &MachineModel,
    scratch: &mut EngineScratch,
) -> ThreadedSsspOutput {
    run_ranks_with(dg, seeds, target, deadline, cfg, model, scratch, || {
        NoopRecorder
    })
    .0
}

/// [`threaded_delta_stepping`] with run telemetry: each rank records its
/// private [`RunStats`] through the shared [`Recorder`] hooks, and the
/// per-rank traces are merged deterministically after the join — rank-local
/// volumes sum, per-step maxima combine by max, and globally-allreduced
/// quantities are asserted identical (the SPMD contract).
///
/// Distances are still bit-identical to the untraced entry point; the
/// recorder only observes values the run already computes.
pub fn threaded_delta_stepping_traced(
    dg: &Arc<DistGraph>,
    root: VertexId,
    cfg: &SsspConfig,
    model: &MachineModel,
) -> (ThreadedSsspOutput, RunTrace) {
    let p = dg.num_ranks();
    let tpr = dg.threads_per_rank;
    let mut scratch = EngineScratch::new(p);
    let (out, stats) = run_ranks_with(
        dg,
        &[(root, 0)],
        None,
        None,
        cfg,
        model,
        &mut scratch,
        move || RunStats {
            num_ranks: p,
            threads_per_rank: tpr,
            ..RunStats::default()
        },
    );
    let trace = merge_rank_traces(
        stats
            .iter()
            .map(|s| RunTrace::from_run_stats(s, "threaded"))
            .collect(),
    );
    (out, trace)
}

/// Shared driver behind the traced, untraced and serving entry points:
/// spawn one thread per rank, move each rank's [`RankScratch`] into its
/// thread, run [`rank_body`] with a freshly made recorder, then fold the
/// per-rank results into the global output and reassemble the scratch
/// (returning the recorders in rank order for the caller to merge).
#[allow(clippy::too_many_arguments)]
fn run_ranks_with<R, F>(
    dg: &Arc<DistGraph>,
    seeds: &[(VertexId, u64)],
    target: Option<VertexId>,
    deadline: Option<Instant>,
    cfg: &SsspConfig,
    model: &MachineModel,
    scratch: &mut EngineScratch,
    mk: F,
) -> (ThreadedSsspOutput, Vec<R>)
where
    R: Recorder + Send + 'static,
    F: Fn() -> R + Send + Sync + 'static,
{
    assert!(
        cfg.flat_state,
        "SsspConfig::flat_state = false selects the legacy BTreeMap bucket layout, \
         which was retired after the PR 8 differential soak; only the flat bucket \
         ring remains"
    );
    let n = dg.num_vertices();
    let seeds = dedup_seeds(seeds, n);
    if let Some(tv) = target {
        assert!((tv as usize) < n, "target {tv} out of range (n = {n})");
    }
    if n == 0 {
        // Mirror the simulated engine: an empty graph short-circuits (any
        // seed already panicked above as out of range).
        return (
            ThreadedSsspOutput {
                distances: Vec::new(),
                relax_local_msgs: 0,
                relax_remote_msgs: 0,
                coalesced_msgs: 0,
                epochs: 0,
                timed_out: false,
            },
            Vec::new(),
        );
    }
    let p = dg.num_ranks();
    if scratch.ranks.len() != p {
        // A scratch sized for a different world is stale wholesale (the
        // serving layer discards scratches on graph rebuild; this makes a
        // mismatched one merely a fresh start, never a wrong answer).
        scratch.ranks = (0..p).map(|_| RankScratch::default()).collect();
    }
    let payloads: Vec<RankScratch> = std::mem::take(&mut scratch.ranks);
    let dg_body = Arc::clone(dg);
    let cfg_body = cfg.clone();
    let model_body = *model;
    let per_rank = run_threaded_with(p, payloads, move |mut ctx: RankCtx<Wire>, mut rs| {
        let mut rec = mk();
        let res = rank_body(
            &dg_body,
            &seeds,
            target,
            deadline,
            &cfg_body,
            &model_body,
            &mut ctx,
            &mut rec,
            &mut rs,
        );
        (res, rec, rs)
    });

    let mut distances = vec![INF; n];
    let mut relax_local_msgs = 0u64;
    let mut relax_remote_msgs = 0u64;
    let mut coalesced_msgs = 0u64;
    let mut epochs = 0u64;
    let mut timed_out = false;
    let mut recorders = Vec::with_capacity(p);
    scratch.ranks.reserve_exact(p);
    for (rank, (res, rec, rs)) in per_rank.into_iter().enumerate() {
        for (l, &d) in res.dist.iter().enumerate() {
            distances[dg.part.to_global(rank, l) as usize] = d;
        }
        relax_local_msgs += res.relax_local_msgs;
        relax_remote_msgs += res.relax_remote_msgs;
        coalesced_msgs += res.coalesced_msgs;
        epochs = epochs.max(res.epochs);
        timed_out |= res.timed_out;
        recorders.push(rec);
        scratch.ranks.push(rs);
    }
    (
        ThreadedSsspOutput {
            distances,
            relax_local_msgs,
            relax_remote_msgs,
            coalesced_msgs,
            epochs,
            timed_out,
        },
        recorders,
    )
}

/// Pack (and, when enabled, coalesce) and exchange a relax superstep's
/// lanes: every lane becomes one target-sorted run, so the receiver
/// applies it as a sequential min-merge. Splits post-packing messages into
/// rank-local and remote (the self lane never touches the wire, matching
/// the simulated accounting), records the superstep with the rank's
/// recorder, and tracks the epoch high-water mark for the pool-shrink
/// policy. Returns the rank's own [`StepStats`]; merged across ranks it
/// reproduces the simulated global step record.
fn exchange_relax<R: Recorder>(
    ctx: &mut RankCtx<Wire>,
    out: &mut [Vec<Wire>],
    inbox: &mut Vec<Wire>,
    coalescing: bool,
    packet: Option<&PacketConfig>,
    t: &mut Traffic,
    rec: &mut R,
) -> StepStats {
    let mut saved = 0u64;
    for lane in out.iter_mut() {
        saved += pack_sorted_run(lane, |w| w.relax().target, |w| w.relax().nd, coalescing);
    }
    for lane in out.iter() {
        t.hwm = t.hwm.max(lane.len());
    }
    let c = ctx.exchange_pooled_counted(out, inbox, RELAX_BYTES, packet);
    t.hwm = t.hwm.max(inbox.len());
    t.relax_local_msgs += c.sent_local;
    t.relax_remote_msgs += c.sent_remote;
    t.coalesced_msgs += saved;
    let step = StepStats {
        remote_msgs: c.sent_remote,
        local_msgs: c.sent_local,
        remote_bytes: c.sent_remote_bytes,
        max_rank_send_bytes: c.sent_remote_bytes,
        max_rank_recv_bytes: c.recv_remote_bytes,
        coalesced_msgs: saved,
    };
    rec.superstep(&step);
    step
}

/// Exchange a request superstep's lanes. Requests are never coalesced —
/// each one expects its own response — and do not count as relax traffic
/// in [`Traffic`] (the recorder still sees them as a full superstep).
fn exchange_reqs<R: Recorder>(
    ctx: &mut RankCtx<Wire>,
    out: &mut [Vec<Wire>],
    inbox: &mut Vec<Wire>,
    packet: Option<&PacketConfig>,
    t: &mut Traffic,
    rec: &mut R,
) -> StepStats {
    for lane in out.iter() {
        t.hwm = t.hwm.max(lane.len());
    }
    let c = ctx.exchange_pooled_counted(out, inbox, REQ_BYTES, packet);
    t.hwm = t.hwm.max(inbox.len());
    let step = StepStats {
        remote_msgs: c.sent_remote,
        local_msgs: c.sent_local,
        remote_bytes: c.sent_remote_bytes,
        max_rank_send_bytes: c.sent_remote_bytes,
        max_rank_recv_bytes: c.recv_remote_bytes,
        coalesced_msgs: 0,
    };
    rec.superstep(&step);
    step
}

/// The §III-C decision on the thread backend: rank-local volume estimates
/// reduced through five allreduces, then the shared totals→decision
/// arithmetic. Returns `(mode, est_push, est_pull)` like the simulated
/// engine's decision. Always policies skip the collectives uniformly
/// (every rank holds the same config, so the SPMD sequence stays aligned);
/// a `Forced` bucket skips them too — except under `record_estimates`,
/// where the volume pass still runs so telemetry shows what the heuristic
/// would have seen, mirroring the simulated engine. `record_estimates`
/// derives from [`Recorder::enabled`], which is uniform across ranks, so
/// the collective sequence stays aligned either way.
#[allow(clippy::too_many_arguments)]
fn decide_threaded(
    ctx: &mut RankCtx<Wire>,
    lg: &LocalGraph,
    st: &RankState,
    window: &EpochWindow,
    cfg: &SsspConfig,
    model: &MachineModel,
    p: usize,
    max_weight: u64,
    buckets_done: usize,
    record_estimates: bool,
) -> (LongPhaseMode, u64, u64) {
    let heuristic = |ctx: &mut RankCtx<Wire>| -> (LongPhaseMode, u64, u64) {
        let (push, pull, scanned) =
            decide::rank_volumes(lg, st, window, cfg.ios, cfg.pull_estimator, max_weight);
        let push_total = ctx.allreduce_sum(push);
        let pull_total = ctx.allreduce_sum(pull);
        let push_max = ctx.allreduce_max(push);
        let pull_max = ctx.allreduce_max(pull);
        let scan_max = ctx.allreduce_max(scanned);
        decide::decide_from_totals(
            cfg, model, p, push_total, pull_total, push_max, pull_max, scan_max,
        )
    };
    match &cfg.direction {
        DirectionPolicy::AlwaysPush => (LongPhaseMode::Push, 0, 0),
        DirectionPolicy::AlwaysPull => (LongPhaseMode::Pull, 0, 0),
        DirectionPolicy::Heuristic => heuristic(ctx),
        DirectionPolicy::Forced(seq) => match seq.get(buckets_done) {
            Some(&mode) => {
                if record_estimates {
                    let (_, est_push, est_pull) = heuristic(ctx);
                    (mode, est_push, est_pull)
                } else {
                    (mode, 0, 0)
                }
            }
            None => heuristic(ctx),
        },
    }
}

/// One rank's whole run: the exact epoch loop of the simulated engine,
/// with every simulated collective replaced by its `RankCtx` counterpart
/// and every buffer rank-private. The recorder observes the rank's own
/// share of each superstep/phase/bucket; merging the per-rank records
/// reproduces the simulated engine's global telemetry.
///
/// The rank's [`RankScratch`] carries state across queries: transport
/// spares are adopted into the channel pool at entry and released back at
/// exit, the `RankState` is reset in place when its shape still matches
/// the graph (rebuilt otherwise), and outbox/inbox capacities survive —
/// trimmed at query end against this query's own high-water mark so a
/// large query's pools never chase a small successor.
// sssp-lint: protocol-entry(threaded)
// sssp-lint: panic-root(rank-thread, forwarded): rank panics propagate through
// the spawning scope's join into the caller, where the serving layer's
// catch_unwind (or the bench process boundary) absorbs them.
#[allow(clippy::too_many_arguments)]
fn rank_body<R: Recorder>(
    dg: &DistGraph,
    seeds: &[(VertexId, u64)],
    target: Option<VertexId>,
    deadline: Option<Instant>,
    cfg: &SsspConfig,
    model: &MachineModel,
    ctx: &mut RankCtx<Wire>,
    rec: &mut R,
    rs: &mut RankScratch,
) -> RankResult {
    let r = ctx.rank();
    let p = ctx.num_ranks();
    let lg = &dg.locals[r];
    let part = &dg.part;
    let policy = PolicyDispatch::from_config(cfg, p);
    let n_total = dg.num_vertices() as u64;
    ctx.adopt_spares(std::mem::take(&mut rs.spares));
    let mut st = match rs.st.take() {
        // Reuse path: same rank, same local vertex count — a full reset
        // (distances, bucket ring *including its base*, frontier stamps,
        // spill lanes) restores the fresh-state contract without touching
        // any allocation.
        Some(mut st) if st.rank == r && st.n_local() == part.local_count(r) => {
            st.reset();
            st
        }
        _ => RankState::new(r, part.local_count(r), dg.threads_per_rank),
    };

    // Global weight extremes: a local scan over the weight-sorted rows,
    // reduced through two collectives (the simulated engine scans every
    // rank directly). Degenerate (edgeless) graphs collapse to (0, 0).
    let (mut w_lo, mut w_hi) = (u64::from(u32::MAX), 0u64);
    for v in 0..lg.num_local() {
        let (_, ws) = lg.row(v);
        if let (Some(&first), Some(&last)) = (ws.first(), ws.last()) {
            w_lo = w_lo.min(first as u64);
            w_hi = w_hi.max(last as u64);
        }
    }
    // sssp-lint: protocol: setup.weight-extremes
    let mut min_weight = ctx.allreduce_min(w_lo);
    let mut max_weight = ctx.allreduce_max(w_hi);
    if dg.m_directed == 0 {
        min_weight = 0;
        max_weight = 0;
    }

    let pi = resolved_pi(cfg.intra_balance, dg.m_directed, n_total);
    let has_short = dg.m_directed > 0 && min_weight < policy.short_bound();

    let mut out: Vec<Vec<Wire>> = std::mem::take(&mut rs.out);
    out.iter_mut().for_each(Vec::clear);
    out.resize_with(p, Vec::new);
    let mut inbox: Vec<Wire> = std::mem::take(&mut rs.inbox);
    inbox.clear();
    let mut req_inbox: Vec<Wire> = std::mem::take(&mut rs.req_inbox);
    req_inbox.clear();
    let mut t = Traffic {
        relax_local_msgs: 0,
        relax_remote_msgs: 0,
        coalesced_msgs: 0,
        hwm: 0,
        query_hwm: 0,
    };
    let packet = model.packet.as_ref();

    st.begin_phase();
    for &(v, d) in seeds {
        if part.owner(v) == r {
            st.relax(part.local_index(v), d, &policy);
        }
    }

    let mut k_prev: Option<u64> = None;
    let mut settled_total = 0u64;
    let mut buckets_done = 0usize;
    let mut epoch = 0u64;
    let mut timed_out = false;

    loop {
        // Epoch tag for the schedule fingerprint: advanced by the same
        // uniform counter on every rank (setup was epoch 0).
        epoch += 1;
        ctx.set_epoch(epoch);

        // Bucket collective: smallest nonempty bucket across all ranks.
        // sssp-lint: protocol: epoch.select
        let k = ctx.allreduce_min(st.next_nonempty_after(k_prev).unwrap_or(u64::MAX));
        if k == u64::MAX {
            break;
        }
        // Slide the flat bucket ring up to the epoch's bucket before
        // anything queries the structure (window proposals included);
        // every later query of the epoch is at or above `k`.
        st.advance_frontier(k);

        // Point-to-point early termination: every unsettled vertex now
        // sits in bucket >= k, and under BSP consistency any relaxation a
        // future epoch can produce lands at distance >= start_dist of the
        // k-window (kΔ for finite delta, k for rho/radius, 0 — i.e. never
        // early — for infinite delta). Once the target's tentative
        // distance is at or below that bound no future epoch can improve
        // it, so the target is settled and the run may stop. Safe under
        // all three policies because the bound comes from the policy's own
        // `window_for`.
        if let Some(tv) = target {
            let mut td_local = INF;
            if part.owner(tv) == r {
                td_local = st.dist[part.local_index(tv) as usize];
            }
            // sssp-lint: protocol: epoch.target-cutoff
            let td = ctx.allreduce_min(td_local);
            if td <= policy.window_for(k, k).start_dist {
                break;
            }
        }

        // Per-query deadline: one cheap collective per epoch, in the same
        // slot as the point-to-point cutoff — between bucket selection and
        // the epoch's first exchange, so a run never starts a superstep it
        // is not allowed to finish. The guard is uniform (every rank gets
        // the same `deadline` from the entry point) and the verdict is a
        // collective, so all ranks break together — a timed-out rank can
        // never wedge a peer mid-rendezvous.
        if deadline.is_some() {
            let expired = deadline.is_some_and(|d| Instant::now() >= d);
            // sssp-lint: protocol: epoch.deadline
            if ctx.any(expired) {
                timed_out = true;
                break;
            }
        }

        // Hybrid switch (§III-D): merge the remaining buckets and finish
        // with Bellman-Ford rounds.
        if let (Some(tau), Some(kp)) = (cfg.hybrid_tau, k_prev) {
            if decide::hybrid_should_switch(tau, settled_total, n_total) {
                rec.hybrid_switch(kp);
                st.collect_active_unsettled(kp);
                let bf_start = Instant::now();
                // sssp-lint: protocol: bf-tail.active-any
                while ctx.any(!st.active.is_empty()) {
                    st.begin_phase();
                    st.loads.reset();
                    let sent = kernels::bf_send(lg, part, &mut st, pi, &mut |dst, m| {
                        out[dst].push(Wire::Relax(m))
                    });
                    // sssp-lint: protocol: bf-tail.exchange-relax
                    let step = exchange_relax(
                        ctx,
                        &mut out,
                        &mut inbox,
                        cfg.coalescing,
                        packet,
                        &mut t,
                        rec,
                    );
                    kernels::apply_relax(&mut st, &policy, inbox.iter().map(Wire::relax));
                    st.collect_active_changed();
                    rec.phase(&PhaseRecord {
                        bucket: u64::MAX,
                        kind: PhaseKind::BellmanFord,
                        relaxations: sent,
                        remote_msgs: step.remote_msgs,
                    });
                }
                rec.phase_nanos(PhaseKind::BellmanFord, elapsed_ns(bf_start));
                break;
            }
        }

        // Window selection: how far past bucket `k` this epoch reaches.
        // The match arms stay in the same source order as the simulated
        // engine so the protocol checker extracts identical schedules.
        let window = match policy.window_rule() {
            WindowRule::SingleBucket => policy.window_for(k, k),
            WindowRule::RhoPrefix => {
                // sssp-lint: protocol: epoch.window-rho
                let hi = ctx.allreduce_min_window(policy.window_proposal(&st, lg, k));
                policy.window_for(k, hi)
            }
            WindowRule::RadiusBall => {
                // sssp-lint: protocol: epoch.window-radius
                let hi = ctx.allreduce_min_window(policy.window_proposal(&st, lg, k));
                policy.window_for(k, hi)
            }
        };

        // Stage 1: repeated inner-short phases.
        st.collect_active_from_window(window.lo, window.hi);
        if has_short {
            let short_start = Instant::now();
            // sssp-lint: protocol: short.active-any
            while ctx.any(!st.active.is_empty()) {
                st.begin_phase();
                st.loads.reset();
                let sent =
                    kernels::short_send(lg, part, &mut st, &window, cfg.ios, pi, &mut |dst, m| {
                        out[dst].push(Wire::Relax(m))
                    });
                // sssp-lint: protocol: short.exchange-relax
                let step = exchange_relax(
                    ctx,
                    &mut out,
                    &mut inbox,
                    cfg.coalescing,
                    packet,
                    &mut t,
                    rec,
                );
                kernels::apply_relax(&mut st, &policy, inbox.iter().map(Wire::relax));
                st.collect_active_changed_in_window(window.lo, window.hi);
                rec.phase(&PhaseRecord {
                    bucket: window.lo,
                    kind: PhaseKind::Short,
                    relaxations: sent,
                    remote_msgs: step.remote_msgs,
                });
            }
            rec.phase_nanos(PhaseKind::Short, elapsed_ns(short_start));
        }

        // Stage 2: long-edge phase, push or pull.
        // sssp-lint: protocol: decide.estimates
        let (mode, est_push, est_pull) = decide_threaded(
            ctx,
            lg,
            &st,
            &window,
            cfg,
            model,
            p,
            max_weight,
            buckets_done,
            rec.enabled(),
        );
        let mut record = BucketRecord {
            bucket: window.lo,
            settled: 0,
            mode,
            est_push,
            est_pull,
            self_edges: 0,
            backward_edges: 0,
            forward_edges: 0,
            requests: 0,
            responses: 0,
            supersteps: 0,
            local_msgs: 0,
            remote_msgs: 0,
            coalesced_msgs: 0,
        };
        match mode {
            LongPhaseMode::Push => {
                let push_start = Instant::now();
                st.begin_phase();
                st.loads.reset();
                let (outer, long) = kernels::long_push_send(
                    lg,
                    part,
                    &mut st,
                    &window,
                    cfg.ios,
                    pi,
                    &mut |dst, m| out[dst].push(Wire::Relax(m)),
                );
                // sssp-lint: protocol: long-push.exchange-relax
                let step = exchange_relax(
                    ctx,
                    &mut out,
                    &mut inbox,
                    cfg.coalescing,
                    packet,
                    &mut t,
                    rec,
                );
                let (se, be, fe) = kernels::classify_apply_relax(
                    &mut st,
                    &window,
                    &policy,
                    inbox.iter().map(Wire::relax),
                );
                record.self_edges = se;
                record.backward_edges = be;
                record.forward_edges = fe;
                rec.phase(&PhaseRecord {
                    bucket: window.lo,
                    kind: PhaseKind::LongPush,
                    relaxations: outer + long,
                    remote_msgs: step.remote_msgs,
                });
                rec.phase_nanos(PhaseKind::LongPush, elapsed_ns(push_start));
            }
            LongPhaseMode::Pull => {
                let pull_start = Instant::now();
                let mut phase_relax = 0u64;
                let mut phase_remote = 0u64;
                if cfg.ios {
                    st.begin_phase();
                    st.loads.reset();
                    let outer =
                        kernels::outer_short_send(lg, part, &mut st, &window, pi, &mut |dst, m| {
                            out[dst].push(Wire::Relax(m))
                        });
                    // sssp-lint: protocol: long-pull.ios-outer-short
                    let step = exchange_relax(
                        ctx,
                        &mut out,
                        &mut inbox,
                        cfg.coalescing,
                        packet,
                        &mut t,
                        rec,
                    );
                    kernels::apply_relax(&mut st, &policy, inbox.iter().map(Wire::relax));
                    phase_relax += outer;
                    phase_remote += step.remote_msgs;
                }
                st.begin_phase();
                st.loads.reset();
                let (req_total, _scanned) =
                    kernels::pull_request_send(lg, part, &mut st, &window, pi, &mut |dst, m| {
                        out[dst].push(Wire::Req(m))
                    });
                // sssp-lint: protocol: long-pull.requests
                let req_step = exchange_reqs(ctx, &mut out, &mut req_inbox, packet, &mut t, rec);
                phase_remote += req_step.remote_msgs;
                st.begin_phase();
                st.loads.reset();
                let resp_total = kernels::pull_respond(
                    part,
                    &mut st,
                    &window,
                    req_inbox.iter().map(Wire::req),
                    &mut |dst, m| out[dst].push(Wire::Relax(m)),
                );
                // sssp-lint: protocol: long-pull.responses
                let resp_step = exchange_relax(
                    ctx,
                    &mut out,
                    &mut inbox,
                    cfg.coalescing,
                    packet,
                    &mut t,
                    rec,
                );
                kernels::apply_relax(&mut st, &policy, inbox.iter().map(Wire::relax));
                phase_remote += resp_step.remote_msgs;
                record.requests = req_total;
                record.responses = resp_total;
                phase_relax += req_total + resp_total;
                rec.phase(&PhaseRecord {
                    bucket: window.lo,
                    kind: PhaseKind::LongPull,
                    relaxations: phase_relax,
                    remote_msgs: phase_remote,
                });
                rec.phase_nanos(PhaseKind::LongPull, elapsed_ns(pull_start));
            }
        }
        rec.bucket(record);

        // Settled-count collective (drives the hybrid switch; the paper
        // computes it at every epoch end).
        // sssp-lint: protocol: epoch.settle
        let settled_k = ctx.allreduce_sum(st.window_count(window.lo, window.hi));
        settled_total += settled_k;
        rec.settled(settled_k);
        k_prev = Some(window.hi);
        buckets_done += 1;

        // Epoch-boundary pool bound: release lanes, inboxes and channel
        // spares that ballooned past 4× this epoch's high-water mark. The
        // same capacity floor as the channel spare pool keeps a quiet epoch
        // (hwm = 0) from freeing every lane.
        ctx.trim_spares();
        let floor = t.hwm.max(SPARE_CAPACITY_FLOOR / 4);
        for lane in out.iter_mut() {
            shrink_oversized(lane, floor);
        }
        shrink_oversized(&mut inbox, floor);
        shrink_oversized(&mut req_inbox, floor);
        t.query_hwm = t.query_hwm.max(t.hwm);
        t.hwm = 0;

        // Debug cross-check of the static protocol table: every rank must
        // have folded the same collective schedule into its fingerprint.
        ctx.assert_schedule_uniform();
    }

    // Final check covers the epochs that exit early (empty-bucket break,
    // the point-to-point cutoff and the Bellman-Ford tail).
    ctx.assert_schedule_uniform();

    // Query-end pool bound: trim channel spares against the whole query's
    // high-water mark (not just the last — possibly quiet — epoch's), then
    // shrink engine lanes the same way, and park everything back in the
    // scratch for the next query. Buffers a large predecessor ballooned
    // are released here, before a small successor inherits the pool.
    t.query_hwm = t.query_hwm.max(t.hwm);
    ctx.finish_query();
    let floor = t.query_hwm.max(SPARE_CAPACITY_FLOOR / 4);
    for lane in out.iter_mut() {
        shrink_oversized(lane, floor);
    }
    shrink_oversized(&mut inbox, floor);
    shrink_oversized(&mut req_inbox, floor);
    rs.out = out;
    rs.inbox = inbox;
    rs.req_inbox = req_inbox;
    rs.spares = ctx.release_spares();

    rec.finish();
    let res = RankResult {
        dist: st.dist.clone(),
        relax_local_msgs: t.relax_local_msgs,
        relax_remote_msgs: t.relax_remote_msgs,
        coalesced_msgs: t.coalesced_msgs,
        epochs: epoch,
        timed_out,
    };
    rs.st = Some(st);
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    #[cfg(debug_assertions)]
    use sssp_comm::threaded::run_threaded;
    use sssp_graph::{gen, CsrBuilder};

    #[test]
    fn threaded_matches_sequential_dijkstra() {
        for seed in 0..3 {
            let g = CsrBuilder::new().build(&gen::uniform(120, 700, 30, seed));
            let expect = seq::dijkstra(&g, 0);
            let model = MachineModel::bgq_like();
            for p in [1usize, 3, 5] {
                let dg = Arc::new(DistGraph::build(&g, p, 2));
                for cfg in [
                    SsspConfig::dijkstra(),
                    SsspConfig::del(15),
                    SsspConfig::prune(20),
                    SsspConfig::opt(20),
                    SsspConfig::bellman_ford(),
                ] {
                    let out = threaded_delta_stepping(&dg, 0, &cfg, &model);
                    assert_eq!(out.distances, expect, "seed {seed} p {p}");
                }
            }
        }
    }

    #[test]
    fn threaded_matches_simulated_bit_identical() {
        let g = CsrBuilder::new().build(&gen::uniform(200, 1200, 40, 9));
        let model = MachineModel::bgq_like();
        for p in [1usize, 4, 6] {
            let dg = Arc::new(DistGraph::build(&g, p, 2));
            for cfg in [SsspConfig::opt(25), SsspConfig::prune(12).with_ios(false)] {
                let simulated = super::super::run_sssp(&dg, 0, &cfg, &model);
                let threaded = threaded_delta_stepping(&dg, 0, &cfg, &model);
                assert_eq!(threaded.distances, simulated.distances, "p {p}");
            }
        }
    }

    #[test]
    fn auto_split_proxies_keep_the_schedule_uniform_across_backends() {
        // Hub-heavy graph through the §III-E auto-split trigger: the proxy
        // region must not perturb the collective schedule. In debug builds
        // every run crosses the rank_body fingerprint assertion, so a
        // divergent schedule on any rank count aborts here; both backends
        // must also stay bit-identical and correct against Dijkstra.
        let mut el = gen::star(300, 5);
        for e in gen::uniform(300, 900, 30, 11).edges {
            el.push(e.u, e.v, e.w);
        }
        let g = CsrBuilder::new().build(&el);
        let expect = seq::dijkstra(&g, 0);
        let model = MachineModel::bgq_like();
        for p in [2usize, 4, 6] {
            let (dg, report) = DistGraph::build_auto_split(&g, p, 2);
            let report = report.expect("hub graph should trigger splitting");
            assert!(report.proxies_created > 0, "p {p}");
            let dg = Arc::new(dg);
            for cfg in [SsspConfig::opt(20), SsspConfig::lb_opt(20)] {
                let simulated = super::super::run_sssp(&dg, 0, &cfg, &model);
                let threaded = threaded_delta_stepping(&dg, 0, &cfg, &model);
                assert_eq!(threaded.distances, simulated.distances, "p {p}");
                assert_eq!(&threaded.distances[..300], &expect[..], "p {p}");
            }
        }
    }

    #[test]
    fn coalescing_toggle_preserves_distances_and_counts_savings() {
        // Dense-ish graph: plenty of parallel proposals per target, so the
        // coalescer must fire. Turning it off must not change distances,
        // only the wire counts.
        let g = CsrBuilder::new().build(&gen::uniform(80, 900, 25, 7));
        let dg = Arc::new(DistGraph::build(&g, 4, 2));
        let model = MachineModel::bgq_like();
        let on = threaded_delta_stepping(&dg, 0, &SsspConfig::opt(20), &model);
        let off =
            threaded_delta_stepping(&dg, 0, &SsspConfig::opt(20).with_coalescing(false), &model);
        assert_eq!(on.distances, off.distances);
        assert_eq!(off.coalesced_msgs, 0);
        assert!(on.coalesced_msgs > 0, "coalescer never fired");
        // Conservation: every message the coalesced run dropped is one the
        // uncoalesced run carried, whether it stayed rank-local or went
        // over the wire.
        assert_eq!(
            on.relax_msgs_total() + on.coalesced_msgs,
            off.relax_msgs_total()
        );
    }

    #[test]
    fn local_and_remote_split_is_exact() {
        // Single rank: every message is self-addressed, none hit the wire.
        let g = CsrBuilder::new().build(&gen::uniform(60, 400, 20, 3));
        let dg1 = Arc::new(DistGraph::build(&g, 1, 2));
        let model = MachineModel::bgq_like();
        let solo = threaded_delta_stepping(&dg1, 0, &SsspConfig::opt(15), &model);
        assert_eq!(solo.relax_remote_msgs, 0);
        assert!(solo.relax_local_msgs > 0, "no traffic recorded at all");

        // Multiple ranks: the same run splits, but the total is conserved.
        let dg4 = Arc::new(DistGraph::build(&g, 4, 2));
        let multi = threaded_delta_stepping(&dg4, 0, &SsspConfig::opt(15), &model);
        assert!(multi.relax_remote_msgs > 0, "no wire traffic across ranks");
    }

    #[test]
    fn traced_run_populates_wall_clock_timings() {
        let g = CsrBuilder::new().build(&gen::uniform(150, 900, 30, 5));
        let model = MachineModel::bgq_like();
        let dg = Arc::new(DistGraph::build(&g, 3, 2));
        let (_, trace) = threaded_delta_stepping_traced(&dg, 0, &SsspConfig::opt(20), &model);
        assert!(
            !trace.timings.is_zero(),
            "threaded trace recorded no wall-clock phase time"
        );
        // The simulated backend leaves timings zero, and the differential
        // comparison must not see the difference.
        let sim = super::super::run_sssp(&dg, 0, &SsspConfig::opt(20), &model);
        let sim_trace = RunTrace::from_run_stats(&sim.stats, "simulated");
        assert!(sim_trace.timings.is_zero());
        assert!(
            sim_trace.diff(&trace).is_empty(),
            "timings leaked into diff"
        );
    }

    #[test]
    fn hybrid_tail_records_bellman_ford_time() {
        let g = CsrBuilder::new().build(&gen::uniform(150, 900, 30, 11));
        let model = MachineModel::bgq_like();
        let dg = Arc::new(DistGraph::build(&g, 2, 2));
        let (_, trace) = threaded_delta_stepping_traced(&dg, 0, &SsspConfig::opt(10), &model);
        assert!(trace.hybrid_switch_at.is_some(), "tail never engaged");
        assert!(
            trace.timings.bf_ns > 0,
            "no Bellman-Ford wall time recorded"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    fn runtime_lock_order_embeds_into_the_static_graph() {
        // The runtime lock-order twin must observe only locks and nestings
        // that exist in the static model (crates/lint/golden/lock_order.txt,
        // mirrored by sssp_comm::lockorder). Full engine runs across three
        // rank counts, with proxies (auto-split hub graph) and without; the
        // twin's own drop-time check also runs implicitly at every join.
        let mut el = gen::star(300, 5);
        for e in gen::uniform(300, 900, 30, 11).edges {
            el.push(e.u, e.v, e.w);
        }
        let hub = CsrBuilder::new().build(&el);
        let plain = CsrBuilder::new().build(&gen::uniform(150, 900, 30, 5));
        let model = MachineModel::bgq_like();
        for p in [2usize, 4, 6] {
            let (split, report) = DistGraph::build_auto_split(&hub, p, 2);
            let report = report.expect("hub graph should trigger splitting");
            assert!(report.proxies_created > 0, "p {p}");
            for dg in [Arc::new(split), Arc::new(DistGraph::build(&plain, p, 2))] {
                let cfg = SsspConfig::opt(20);
                let obs = run_threaded(p, {
                    let dg = Arc::clone(&dg);
                    let cfg = cfg.clone();
                    move |mut ctx: RankCtx<Wire>| {
                        let mut rec = NoopRecorder;
                        let mut rs = RankScratch::default();
                        rank_body(
                            &dg,
                            &[(0, 0)],
                            None,
                            None,
                            &cfg,
                            &model,
                            &mut ctx,
                            &mut rec,
                            &mut rs,
                        );
                        (ctx.observed_locks(), ctx.observed_lock_pairs())
                    }
                });
                for (locks, pairs) in obs {
                    assert!(locks.contains(&"slots"), "p {p}: no collective lock");
                    for lock in &locks {
                        assert!(
                            sssp_comm::lockorder::STATIC_LOCKS.contains(lock),
                            "p {p}: lock `{lock}` outside the static model"
                        );
                    }
                    for pair in &pairs {
                        assert!(
                            sssp_comm::lockorder::STATIC_EDGES.contains(pair),
                            "p {p}: order {pair:?} outside the static graph"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock acquisition order")]
    fn seeded_inversion_in_an_engine_run_trips_the_twin() {
        let g = CsrBuilder::new().build(&gen::uniform(80, 400, 20, 3));
        let dg = Arc::new(DistGraph::build(&g, 2, 2));
        let model = MachineModel::bgq_like();
        run_threaded(2, move |mut ctx: RankCtx<Wire>| {
            let mut rec = NoopRecorder;
            let mut rs = RankScratch::default();
            rank_body(
                &dg,
                &[(0, 0)],
                None,
                None,
                &SsspConfig::opt(15),
                &model,
                &mut ctx,
                &mut rec,
                &mut rs,
            );
            if ctx.rank() == 1 {
                ctx.perturb_lock_order("slots", "slots");
            }
        });
    }

    #[test]
    fn threaded_handles_degenerate_graphs() {
        // Single vertex, no edges.
        let g = CsrBuilder::new().build(&gen::path(1, 1));
        let dg = Arc::new(DistGraph::build(&g, 2, 1));
        let out = threaded_delta_stepping(&dg, 0, &SsspConfig::opt(10), &MachineModel::bgq_like());
        assert_eq!(out.distances, vec![0]);
        assert_eq!(out.relax_msgs_total(), 0);

        // Disconnected pair: the far component stays unreached.
        let mut el = gen::path(2, 5);
        el.n = 4;
        el.push(2, 3, 1);
        let g = CsrBuilder::new().build(&el);
        let dg = Arc::new(DistGraph::build(&g, 3, 1));
        let out = threaded_delta_stepping(&dg, 0, &SsspConfig::del(4), &MachineModel::bgq_like());
        assert_eq!(out.distances, vec![0, 5, INF, INF]);
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh_runs() {
        // The satellite-2 regression: query 1 is deliberately spill-heavy —
        // Δ = 1 over a long weighted path drives bucket indices far past
        // FLAT_LANES, so the ring's `base` slides high and the spill lanes
        // fill. A stale `base` or a leftover spill entry would silently
        // swallow the next query's bucket-0 seeds; every follow-up query on
        // the same scratch must match a radix-heap Dijkstra and a fresh
        // one-shot run bit for bit.
        let mut el = gen::path(600, 7);
        for e in gen::uniform(600, 1800, 30, 13).edges {
            el.push(e.u, e.v, e.w);
        }
        let g = CsrBuilder::new().build(&el);
        let model = MachineModel::bgq_like();
        for p in [1usize, 3] {
            let dg = Arc::new(DistGraph::build(&g, p, 2));
            let mut scratch = EngineScratch::new(p);
            let cfg_spill = SsspConfig::del(1);
            let first = threaded_sssp_query(&dg, &[(0, 0)], None, &cfg_spill, &model, &mut scratch);
            assert_eq!(first.distances, seq::dijkstra_radix(&g, 0), "p {p} first");
            for (root, cfg) in [
                (599u32, SsspConfig::opt(20)),
                (7, SsspConfig::del(1)),
                (0, SsspConfig::rho(64)),
                (42, SsspConfig::radius(64)),
            ] {
                let reused =
                    threaded_sssp_query(&dg, &[(root, 0)], None, &cfg, &model, &mut scratch);
                assert_eq!(
                    reused.distances,
                    seq::dijkstra_radix(&g, root),
                    "p {p} root {root}: reused scratch diverged from dijkstra"
                );
                let fresh = threaded_sssp_seeded(&dg, &[(root, 0)], &cfg, &model);
                assert_eq!(
                    reused.distances, fresh.distances,
                    "p {p} root {root}: reused scratch diverged from a fresh run"
                );
            }
            // Multi-seed on the warm scratch, against a fresh run.
            let seeds = [(3u32, 10u64), (500, 0), (3, 2)];
            let reused = threaded_sssp_query(
                &dg,
                &seeds,
                None,
                &SsspConfig::opt(15),
                &model,
                &mut scratch,
            );
            let fresh = threaded_sssp_seeded(&dg, &seeds, &SsspConfig::opt(15), &model);
            assert_eq!(reused.distances, fresh.distances, "p {p} multi-seed");
        }
    }

    #[test]
    fn point_to_point_cutoff_settles_the_target_early() {
        // Long weighted path plus noise: the far endpoint settles only at
        // the very end of a full run, while a nearby target settles almost
        // immediately — the cutoff must stop the epoch loop early for the
        // near target, return its exact distance, and stay bit-identical
        // on the target entry under all three stepping policies.
        let mut el = gen::path(400, 9);
        for e in gen::uniform(400, 1200, 30, 5).edges {
            el.push(e.u, e.v, e.w);
        }
        let g = CsrBuilder::new().build(&el);
        let expect = seq::dijkstra_radix(&g, 0);
        let model = MachineModel::bgq_like();
        // Non-hybrid configs: the τ-triggered Bellman-Ford tail would merge
        // the remaining buckets after a couple of epochs and leave the
        // cutoff nothing to save on a graph this small.
        for cfg in [
            SsspConfig::del(10),
            SsspConfig::rho(8),
            SsspConfig::radius(8),
        ] {
            let dg = Arc::new(DistGraph::build(&g, 3, 2));
            let mut scratch = EngineScratch::new(3);
            let full = threaded_sssp_query(&dg, &[(0, 0)], None, &cfg, &model, &mut scratch);
            assert_eq!(full.distances, expect);
            // A target two hops from the root settles in the earliest epochs.
            let near = threaded_sssp_query(&dg, &[(0, 0)], Some(2), &cfg, &model, &mut scratch);
            assert_eq!(near.distances[2], expect[2], "near target distance");
            // ρ-stepping's window fixpoint can finish a small graph in two
            // epochs regardless, leaving the cutoff nothing to skip; the
            // other policies must show a strict epoch saving.
            if matches!(cfg.policy, crate::config::SteppingPolicyKind::Rho(_)) {
                assert!(near.epochs <= full.epochs);
            } else {
                assert!(
                    near.epochs < full.epochs,
                    "cutoff saved no epochs ({} vs {})",
                    near.epochs,
                    full.epochs
                );
            }
            // The far endpoint cannot terminate before the full run would
            // anyway; its distance must still be exact.
            let far = threaded_sssp_query(&dg, &[(0, 0)], Some(399), &cfg, &model, &mut scratch);
            assert_eq!(far.distances[399], expect[399], "far target distance");
        }
    }

    #[test]
    fn query_pool_bound_holds_across_mixed_size_queries() {
        // The satellite-1 regression: a message-heavy query balloons the
        // resident pools; the next (tiny) query must hand the scratch back
        // bounded by its *own* high-water mark, not the predecessor's.
        // Before per-query accounting, spares trimmed against the last
        // quiet epoch's mark survived indefinitely.
        let big = CsrBuilder::new().build(&gen::uniform(4000, 60_000, 30, 21));
        let model = MachineModel::bgq_like();
        let p = 3usize;
        let dg = Arc::new(DistGraph::build(&big, p, 2));
        let mut scratch = EngineScratch::new(p);
        threaded_sssp_query(
            &dg,
            &[(0, 0)],
            None,
            &SsspConfig::opt(20),
            &model,
            &mut scratch,
        );
        let after_big = scratch.max_buffer_capacity();

        // A point-to-point query for a root's neighbor touches a handful
        // of vertices before the cutoff fires — its high-water mark is
        // tiny, so the scratch it returns must be near the warm-pool floor.
        threaded_sssp_query(
            &dg,
            &[(0, 0)],
            Some(0),
            &SsspConfig::opt(20),
            &model,
            &mut scratch,
        );
        let after_small = scratch.max_buffer_capacity();
        assert!(
            after_small <= SPARE_CAPACITY_FLOOR.max(after_big / 8),
            "small query left oversized pools: {after_small} (big query: {after_big})"
        );
        // The shrink must not break correctness of the next real query.
        let out = threaded_sssp_query(
            &dg,
            &[(9, 0)],
            None,
            &SsspConfig::opt(20),
            &model,
            &mut scratch,
        );
        assert_eq!(out.distances, seq::dijkstra_radix(&big, 9));
    }
}
