//! The hybrid tail (§III-D): once the settled fraction passes τ, all
//! remaining buckets are merged and finished with Bellman-Ford phases that
//! relax every edge of every active vertex.
use rayon::prelude::*;

use crate::instrument::{PhaseKind, PhaseRecord};

use super::record::Recorder;
use super::{invariants, kernels, Engine};

impl Engine<'_> {
    // -- hybrid Bellman-Ford tail (§III-D) ---------------------------------------

    pub(super) fn bellman_ford_tail(&mut self, k_last: u64) {
        let dg = self.dg;
        let policy = self.policy;
        let pi = self.pi;

        self.states
            .par_iter_mut()
            .for_each(|st| st.collect_active_unsettled(k_last));

        // sssp-lint: protocol: bf-tail.active-any
        while self.any_active() {
            self.begin_superstep();
            let sent_total: u64 = self
                .states
                .par_iter_mut()
                .zip(self.relax_bufs.outboxes.par_iter_mut())
                .map(|(st, ob)| {
                    kernels::bf_send(&dg.locals[st.rank], &dg.part, st, pi, &mut |dst, m| {
                        ob.send(dst, m)
                    })
                })
                .sum();
            // sssp-lint: protocol: bf-tail.exchange-relax
            let step = self.exchange_relax();
            invariants::check_conservation(&self.relax_bufs.inboxes, &step);
            self.states
                .par_iter_mut()
                .zip(self.relax_bufs.inboxes.par_iter())
                .for_each(|(st, inbox)| {
                    kernels::apply_relax(st, &policy, inbox.iter().copied());
                    // Next round's frontier: the vertices this round improved.
                    st.collect_active_changed();
                });
            self.charge_exchange(&step);
            self.stats.superstep(&step);
            self.stats.bf_relaxations += sent_total;
            self.stats.phase(&PhaseRecord {
                bucket: u64::MAX,
                kind: PhaseKind::BellmanFord,
                relaxations: sent_total,
                remote_msgs: step.remote_msgs,
            });
        }
    }
}
