//! Short-edge phases (§II / §III-A): relax the (inner) short edges of the
//! active vertices until no tentative distance changes.
use rayon::prelude::*;

use crate::instrument::{PhaseKind, PhaseRecord};
use crate::policy::EpochWindow;

use super::record::Recorder;
use super::{invariants, kernels, Engine};

impl Engine<'_> {
    // -- short phases --------------------------------------------------------

    pub(super) fn short_phase(&mut self, window: EpochWindow) {
        self.begin_superstep();
        let dg = self.dg;
        let policy = self.policy;
        let ios = self.cfg.ios;
        let pi = self.pi;

        let relaxations: u64 = self
            .states
            .par_iter_mut()
            .zip(self.relax_bufs.outboxes.par_iter_mut())
            .map(|(st, ob)| {
                kernels::short_send(
                    &dg.locals[st.rank],
                    &dg.part,
                    st,
                    &window,
                    ios,
                    pi,
                    &mut |dst, m| ob.send(dst, m),
                )
            })
            .sum();

        let step = self.exchange_relax();
        invariants::check_conservation(&self.relax_bufs.inboxes, &step);

        self.states
            .par_iter_mut()
            .zip(self.relax_bufs.inboxes.par_iter())
            .for_each(|(st, inbox)| {
                kernels::apply_relax(st, &policy, inbox.iter().copied());
                // Next phase's active set: changed vertices now inside the
                // window (the classic B_k under Δ-stepping).
                st.collect_active_changed_in_window(window.lo, window.hi);
            });

        self.charge_exchange(&step);
        self.stats.superstep(&step);
        self.stats.short_relaxations += relaxations;
        self.stats.phase(&PhaseRecord {
            bucket: window.lo,
            kind: PhaseKind::Short,
            relaxations,
            remote_msgs: step.remote_msgs,
        });
    }
}
