//! Short-edge phases (§II / §III-A): relax the (inner) short edges of the
//! active vertices until no tentative distance changes.
use rayon::prelude::*;

use crate::instrument::{PhaseKind, PhaseRecord};

use super::{invariants, Engine, RELAX_BYTES};

impl Engine<'_> {
    // -- short phases --------------------------------------------------------

    pub(super) fn short_phase(&mut self, k: u64) {
        self.begin_superstep();
        let dg = self.dg;
        let delta = self.cfg.delta;
        let ios = self.cfg.ios;
        let pi = self.pi;
        let short_bound = delta.short_bound();
        let bucket_end = delta.bucket_end(k);

        let relaxations: u64 = self
            .states
            .par_iter_mut()
            .zip(self.relax_bufs.outboxes.par_iter_mut())
            .map(|(st, ob)| {
                let lg = &dg.locals[st.rank];
                let part = &dg.part;
                let mut sent = 0u64;
                for &u in &st.active {
                    let ul = u as usize;
                    debug_assert_eq!(st.bucket_of[ul], k);
                    let du = st.dist[ul];
                    debug_assert!(du <= bucket_end);
                    let (ts, ws) = lg.row(ul);
                    let hi = if ios {
                        // Inner short edges only: d(u) + w must stay inside
                        // the bucket (and the edge must be short).
                        let bound = (bucket_end - du).min(short_bound.saturating_sub(1));
                        ws.partition_point(|&w| (w as u64) <= bound)
                    } else {
                        ws.partition_point(|&w| (w as u64) < short_bound)
                    };
                    for i in 0..hi {
                        let v = ts[i];
                        invariants::check_ios_inner_edge(ios, ws[i], du, short_bound, bucket_end);
                        ob.send(
                            part.owner(v),
                            super::RelaxMsg {
                                target: part.local_index(v),
                                nd: du + ws[i] as u64,
                            },
                        );
                    }
                    let heavy = (lg.degree(ul) as u64) > pi;
                    st.loads.charge(ul, hi as u64, heavy);
                    sent += hi as u64;
                }
                sent
            })
            .sum();

        let step = self
            .relax_bufs
            .exchange(RELAX_BYTES, self.model.packet.as_ref());
        invariants::check_conservation(&self.relax_bufs.inboxes, &step);

        self.states
            .par_iter_mut()
            .zip(self.relax_bufs.inboxes.par_iter())
            .for_each(|(st, inbox)| {
                for m in inbox.iter() {
                    st.charge_recv(m.target);
                    st.relax(m.target, m.nd, &delta);
                }
                // Next phase's active set: changed vertices now in B_k.
                st.collect_active_changed_in_bucket(k);
            });

        self.charge_exchange(&step);
        self.comm.record(step);
        self.stats.short_relaxations += relaxations;
        self.stats.phases += 1;
        self.stats.phase_records.push(PhaseRecord {
            bucket: k,
            kind: PhaseKind::Short,
            relaxations,
            remote_msgs: step.remote_msgs,
        });
    }
}
