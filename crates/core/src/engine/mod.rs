//! The distributed SSSP engine (§II–III of the paper).
//!
//! One `run_sssp` call executes the configured algorithm over a
//! [`DistGraph`] in bulk-synchronous supersteps:
//!
//! ```text
//! per epoch (bucket k):
//!   short-edge phases      — relax (inner) short edges of active vertices,
//!                            repeat until no tentative distance changes;
//!   long-edge phase        — push (owners of B_k relax long + outer-short
//!                            edges) or pull (later-bucket owners request
//!                            w < d(v) − kΔ; B_k owners respond), chosen per
//!                            bucket by the §III-C decision heuristic;
//! hybrid switch            — once the settled fraction exceeds τ, the
//!                            remaining buckets merge and finish with
//!                            Bellman-Ford phases (§III-D).
//! ```
//!
//! Every relaxation travels as a message between simulated ranks; collective
//! operations synchronize phase/epoch boundaries exactly as the paper's
//! Blue Gene/Q implementation does, and the α–β–γ cost model converts the
//! recorded traffic into simulated time.

use std::collections::BTreeMap;
use std::time::Instant;

use rayon::prelude::*;

use sssp_comm::collective::{allreduce_max, allreduce_min, allreduce_min_window, allreduce_sum};
use sssp_comm::cost::{MachineModel, TimeClass, TimeLedger};
use sssp_comm::exchange::{pack_sorted_run, ExchangeBuffers};
use sssp_comm::stats::{CommStats, StepStats};
use sssp_dist::DistGraph;
use sssp_graph::VertexId;

use crate::config::{IntraBalance, LongPhaseMode, SsspConfig};
use crate::instrument::{BucketRecord, RunStats};
use crate::policy::{EpochWindow, PolicyDispatch, SteppingPolicy, WindowRule};
use crate::state::{RankState, INF};

use record::Recorder;

/// A relaxation proposal: `d(target) ← min(d(target), nd)`.
#[derive(Debug, Clone, Copy)]
pub(super) struct RelaxMsg {
    /// Local index on the destination rank.
    pub(super) target: u32,
    pub(super) nd: u64,
}

/// A pull request: "if `u` is in the current bucket, send me `d(u) + w`".
#[derive(Debug, Clone, Copy)]
pub(super) struct ReqMsg {
    /// Local index of the requested source vertex on the destination rank.
    pub(super) u_local: u32,
    /// Global id of the requesting vertex.
    pub(super) origin: VertexId,
    /// Weight of the edge the request travels along.
    pub(super) w: u32,
}

/// On-wire message sizes charged by the cost model (a packed
/// target + 48-bit distance fits 16 bytes; requests likewise).
pub(super) const RELAX_BYTES: usize = 16;
pub(super) const REQ_BYTES: usize = 16;

/// Result of a run: final distances (indexed by global vertex id, `u64::MAX`
/// = unreachable) plus the full instrumentation record.
#[derive(Debug, Clone)]
pub struct SsspOutput {
    /// Final distances indexed by global vertex id (`u64::MAX` = unreached).
    pub distances: Vec<u64>,
    /// Full instrumentation record.
    pub stats: RunStats,
    /// True when the run stopped at its deadline instead of settling every
    /// bucket — the distance field is partially tentative and must not be
    /// served or cached as final.
    pub timed_out: bool,
}

impl SsspOutput {
    #[inline]
    /// Final distance of `v` ([`INF`](crate::state::INF) when unreached).
    pub fn dist(&self, v: VertexId) -> u64 {
        self.distances[v as usize]
    }

    /// Number of vertices with a finite distance.
    pub fn reachable(&self) -> u64 {
        self.stats.reachable
    }
}

/// Run the configured SSSP algorithm from `root` over the distributed graph.
///
/// # Examples
///
/// ```
/// use sssp_core::{run_sssp, SsspConfig};
/// use sssp_comm::cost::MachineModel;
/// use sssp_dist::DistGraph;
/// use sssp_graph::{gen, CsrBuilder};
///
/// let csr = CsrBuilder::new().build(&gen::path(5, 3));
/// let dg = DistGraph::build(&csr, 2, 2);
/// let out = run_sssp(&dg, 0, &SsspConfig::opt(25), &MachineModel::bgq_like());
/// assert_eq!(out.distances, vec![0, 3, 6, 9, 12]);
/// assert_eq!(out.reachable(), 5);
/// ```
pub fn run_sssp(
    dg: &DistGraph,
    root: VertexId,
    cfg: &SsspConfig,
    model: &MachineModel,
) -> SsspOutput {
    Engine::new(dg, cfg, model).run(&[(root, 0)], None)
}

/// Multi-source SSSP: every vertex's distance to its *nearest* source
/// (all sources start at distance 0). Equivalent to adding a virtual root
/// with zero-weight edges to each source, without the graph transform.
/// Useful for closeness fields, graph Voronoi partitions and the sampled
/// centrality drivers.
pub fn run_sssp_multi(
    dg: &DistGraph,
    sources: &[VertexId],
    cfg: &SsspConfig,
    model: &MachineModel,
) -> SsspOutput {
    let seeds: Vec<(VertexId, u64)> = sources.iter().map(|&s| (s, 0)).collect();
    run_sssp_seeded(dg, &seeds, cfg, model)
}

/// Fully general entry point: start from arbitrary `(vertex, distance)`
/// seeds. A vertex listed twice keeps its smallest seed distance.
pub fn run_sssp_seeded(
    dg: &DistGraph,
    seeds: &[(VertexId, u64)],
    cfg: &SsspConfig,
    model: &MachineModel,
) -> SsspOutput {
    Engine::new(dg, cfg, model).run(seeds, None)
}

/// Point-to-point query on the simulated backend: run from `root` and stop
/// epoch selection as soon as `target`'s tentative distance can no longer
/// improve — at or below the `start_dist` of the window about to run,
/// every unsettled vertex is provably at least that far, so the target is
/// final under all three stepping policies. `distances[target]` is exact;
/// other entries may remain tentative. The cutoff issues one extra
/// collective per epoch (`epoch.target-cutoff` in the protocol table), in
/// the same schedule position as the threaded backend's.
pub fn run_sssp_p2p(
    dg: &DistGraph,
    root: VertexId,
    target: VertexId,
    cfg: &SsspConfig,
    model: &MachineModel,
) -> SsspOutput {
    Engine::new(dg, cfg, model).run(&[(root, 0)], Some(target))
}

/// [`run_sssp_seeded`] with a wall-clock deadline: the epoch loop checks
/// the clock once per epoch — at the same schedule slot as the threaded
/// backend's `epoch.deadline` collective, right after bucket selection —
/// and stops with [`SsspOutput::timed_out`] set when the deadline has
/// passed. A timed-out distance field is partially tentative: entries
/// settled before the cutoff are final, the rest are upper bounds.
pub fn run_sssp_seeded_deadline(
    dg: &DistGraph,
    seeds: &[(VertexId, u64)],
    cfg: &SsspConfig,
    model: &MachineModel,
    deadline: Option<Instant>,
) -> SsspOutput {
    let mut engine = Engine::new(dg, cfg, model);
    engine.deadline = deadline;
    engine.run(seeds, None)
}

/// Validate and canonicalize a seed list, shared by both backends: every
/// seed vertex must exist, and a vertex listed twice keeps its smallest
/// seed distance — so the relax order of duplicate seeds can never matter.
/// An empty list is legal: the run settles nothing and every distance
/// stays [`INF`].
pub(super) fn dedup_seeds(seeds: &[(VertexId, u64)], n_total: usize) -> Vec<(VertexId, u64)> {
    let mut best: BTreeMap<VertexId, u64> = BTreeMap::new();
    for &(v, d) in seeds {
        assert!(
            (v as usize) < n_total,
            "seed vertex {v} out of range (n = {n_total})"
        );
        let e = best.entry(v).or_insert(d);
        *e = (*e).min(d);
    }
    best.into_iter().collect()
}

/// Public face of the seed canonicalization both backends run internally:
/// validate against `n_total`, drop duplicate vertices keeping each one's
/// smallest seed distance, and return the list sorted by vertex id. Two
/// seed lists with the same canonical form provably produce the same
/// distances, which is exactly the equivalence a serving-layer result
/// cache needs for its keys.
pub fn canonical_seeds(seeds: &[(VertexId, u64)], n_total: usize) -> Vec<(VertexId, u64)> {
    dedup_seeds(seeds, n_total)
}

struct Engine<'a> {
    pub(super) dg: &'a DistGraph,
    pub(super) cfg: &'a SsspConfig,
    pub(super) model: &'a MachineModel,
    pub(super) p: usize,
    /// The run's stepping policy (bucket assignment + window selection),
    /// resolved once from the config.
    pub(super) policy: PolicyDispatch,
    pub(super) states: Vec<RankState>,
    pub(super) comm: CommStats,
    pub(super) ledger: TimeLedger,
    pub(super) stats: RunStats,
    /// Resolved intra-node balancing threshold π (`u64::MAX` = off).
    pub(super) pi: u64,
    pub(super) min_weight: u32,
    pub(super) max_weight: u32,
    /// Pooled relax-message buffers, reused by every phase of every
    /// superstep (cleared between phases, capacity retained).
    pub(super) relax_bufs: ExchangeBuffers<RelaxMsg>,
    /// Pooled pull-request buffers.
    pub(super) req_bufs: ExchangeBuffers<ReqMsg>,
    /// Reusable per-rank contribution scratch for collectives.
    pub(super) coll: Vec<u64>,
    /// Wall-clock deadline for the whole run (`None` = unbounded).
    pub(super) deadline: Option<Instant>,
    /// Set when the epoch loop stopped at the deadline.
    pub(super) timed_out: bool,
}

/// Resolve the §III-E intra-node balancing threshold π from the configured
/// mode and the graph's average degree. `Auto` rounds the average degree to
/// nearest — truncating division used to resolve π from `avg_deg = 0` (so
/// π = 64 regardless of shape) on any graph whose true average degree had a
/// fractional part, and systematically underestimated π elsewhere.
pub fn resolved_pi(balance: IntraBalance, m_directed: u64, n_vertices: u64) -> u64 {
    match balance {
        IntraBalance::Off => u64::MAX,
        IntraBalance::Threshold(t) => t as u64,
        IntraBalance::Auto => {
            let avg_deg = (m_directed + n_vertices / 2)
                .checked_div(n_vertices)
                .unwrap_or(0);
            (4 * avg_deg).max(64)
        }
    }
}

impl<'a> Engine<'a> {
    // sssp-lint: protocol-entry(simulated)
    fn new(dg: &'a DistGraph, cfg: &'a SsspConfig, model: &'a MachineModel) -> Self {
        assert!(
            cfg.flat_state,
            "SsspConfig::flat_state = false selects the legacy BTreeMap bucket layout, \
             which was retired after the PR 8 differential soak; only the flat bucket \
             ring remains"
        );
        let p = dg.num_ranks();
        let threads = dg.threads_per_rank;
        let states: Vec<RankState> = (0..p)
            .map(|r| RankState::new(r, dg.part.local_count(r), threads))
            .collect();

        // Global weight extremes (rows are weight-sorted, so first/last
        // entries suffice). An edgeless graph has no extremes; collapse the
        // scan sentinels to (0, 0) so `min_weight = u32::MAX` never leaks
        // into the decision heuristic's eq. 1 estimate. The ranks share the
        // simulator's memory, so no collective travels here — the threaded
        // backend reduces the same extremes with two allreduces.
        // sssp-lint: protocol-implicit: setup.weight-extremes reduce
        let mut min_w = u32::MAX;
        let mut max_w = 0u32;
        for lg in &dg.locals {
            for v in 0..lg.num_local() {
                let (_, ws) = lg.row(v);
                if let (Some(&first), Some(&last)) = (ws.first(), ws.last()) {
                    min_w = min_w.min(first);
                    max_w = max_w.max(last);
                }
            }
        }
        if dg.m_directed == 0 {
            min_w = 0;
            max_w = 0;
        }

        let pi = resolved_pi(cfg.intra_balance, dg.m_directed, dg.num_vertices() as u64);

        let stats = RunStats {
            num_ranks: p,
            threads_per_rank: threads,
            ..Default::default()
        };

        Engine {
            dg,
            cfg,
            model,
            p,
            policy: PolicyDispatch::from_config(cfg, p),
            states,
            comm: CommStats::new(),
            ledger: TimeLedger::new(),
            stats,
            pi,
            min_weight: min_w,
            max_weight: max_w,
            relax_bufs: ExchangeBuffers::new(p),
            req_bufs: ExchangeBuffers::new(p),
            coll: Vec::with_capacity(p),
            deadline: None,
            timed_out: false,
        }
    }

    // sssp-lint: protocol-entry(simulated)
    fn run(mut self, seeds: &[(VertexId, u64)], target: Option<VertexId>) -> SsspOutput {
        let n_total = self.dg.num_vertices() as u64;
        // Seed validation runs before the empty-graph return so both
        // degenerate cases behave the same on both backends: out-of-range
        // seeds always panic, an empty seed list always yields all-INF.
        let seeds = dedup_seeds(seeds, n_total as usize);
        if let Some(tv) = target {
            assert!(
                (tv as u64) < n_total,
                "target {tv} out of range (n = {n_total})"
            );
        }
        if n_total == 0 {
            return self.finish();
        }
        let policy = self.policy;
        for st in &mut self.states {
            st.begin_phase();
        }
        for &(v, d) in &seeds {
            let owner = self.dg.part.owner(v);
            let local = self.dg.part.local_index(v);
            self.states[owner].relax(local, d, &policy);
        }

        let mut k_prev: Option<u64> = None;
        let mut settled_total = 0u64;
        let mut epoch = 0u64;
        loop {
            // Uniform epoch tag for the schedule fingerprint: bumped once
            // per bucket epoch on both backends (setup runs as epoch 0).
            epoch += 1;
            self.comm.set_epoch(epoch);
            self.stats.comm.set_epoch(epoch);
            // sssp-lint: protocol: epoch.select
            let next = self.next_bucket(k_prev);
            let Some(k) = next else { break };
            invariants::check_epoch_monotone(k, k_prev);
            // Slide the flat bucket rings up to the epoch's bucket before
            // anything queries the structure (window proposals included);
            // every later query of the epoch is at or above `k`.
            for st in &mut self.states {
                st.advance_frontier(k);
            }

            // Point-to-point early termination, in the same schedule slot
            // as the threaded backend's: every unsettled vertex now sits in
            // bucket >= k, so nothing a future epoch relaxes can land below
            // the k-window's `start_dist` — once the target's tentative
            // distance is at or below that bound it is final and the run
            // may stop. Safe under all three policies because the bound is
            // the policy's own `window_for`.
            if let Some(tv) = target {
                // sssp-lint: protocol: epoch.target-cutoff
                let td = self.target_distance_collective(tv);
                if td <= self.policy.window_for(k, k).start_dist {
                    break;
                }
            }

            // Per-query deadline, in the same schedule slot as the threaded
            // backend's: checked once per epoch between bucket selection
            // and the epoch's first exchange, so a run never starts a
            // superstep it is not allowed to finish. The guard is uniform
            // (the deadline is fixed at entry) and the verdict is a
            // collective, so every rank stops together.
            if self.deadline.is_some() {
                // sssp-lint: protocol: epoch.deadline
                if self.deadline_collective() {
                    self.timed_out = true;
                    break;
                }
            }

            if let (Some(tau), Some(kp)) = (self.cfg.hybrid_tau, k_prev) {
                if decide::hybrid_should_switch(tau, settled_total, n_total) {
                    self.stats.hybrid_switch(kp);
                    self.bellman_ford_tail(kp);
                    break;
                }
            }

            // Window selection: policies that process more than one bucket
            // per epoch reduce their per-rank window proposals through the
            // dedicated window collective; Δ-stepping's single-bucket rule
            // issues no collective at all. Both backends hold this match in
            // the same arm order so the protocol checker extracts the same
            // per-policy schedule from each.
            let window = match self.policy.window_rule() {
                WindowRule::SingleBucket => self.policy.window_for(k, k),
                WindowRule::RhoPrefix => {
                    // sssp-lint: protocol: epoch.window-rho
                    let hi = self.window_collective(k);
                    self.policy.window_for(k, hi)
                }
                WindowRule::RadiusBall => {
                    // sssp-lint: protocol: epoch.window-radius
                    let hi = self.window_collective(k);
                    self.policy.window_for(k, hi)
                }
            };

            self.process_window(window);
            self.stats.epochs += 1;

            // Settled-count collective (drives the hybrid switch; the paper
            // computes it at every epoch end). A window epoch settles its
            // whole bucket range.
            self.coll.clear();
            self.coll.extend(
                self.states
                    .iter()
                    .map(|s| s.window_count(window.lo, window.hi)),
            );
            // sssp-lint: protocol: epoch.settle
            let settled_k = allreduce_sum(&self.coll, &mut self.comm);
            self.ledger
                .charge_collective(self.model, TimeClass::Bucket, self.p);
            settled_total += settled_k;
            self.stats.settled(settled_k);

            // Epoch-boundary pool bound: release any buffer whose capacity
            // ballooned past 4× this epoch's high-water mark, so a one-off
            // giant superstep cannot pin memory for the rest of the run.
            if self.cfg.pooled_buffers {
                self.relax_bufs.shrink_to_watermark();
                self.req_bufs.shrink_to_watermark();
            }

            // The next epoch starts past the *window*, not the selected
            // bucket — everything inside `[lo, hi]` is settled now.
            k_prev = Some(window.hi);
        }
        self.finish()
    }

    fn finish(mut self) -> SsspOutput {
        let part = &self.dg.part;
        let mut distances = vec![INF; self.dg.num_vertices()];
        for st in &self.states {
            for l in 0..st.n_local() {
                distances[part.to_global(st.rank, l) as usize] = st.dist[l];
            }
        }
        self.stats.reachable = distances.iter().filter(|&&d| d != INF).count() as u64;
        // Flush the hybrid tail's pseudo-bucket record (if any) before the
        // stats leave the engine.
        self.stats.finish();
        // Superstep records flow into `stats.comm` through the recorder as
        // they happen; only the collective count lives on the engine side.
        self.stats.comm.collectives = self.comm.collectives;
        // Fold the engine-side collective fingerprint into the recorder's
        // exchange fingerprint so the output carries the full schedule.
        self.stats.comm.fingerprint ^= self.comm.fingerprint;
        self.stats.ledger = self.ledger;
        SsspOutput {
            distances,
            stats: self.stats,
            timed_out: self.timed_out,
        }
    }

    // -- collectives -------------------------------------------------------

    pub(super) fn next_bucket(&mut self, after: Option<u64>) -> Option<u64> {
        self.coll.clear();
        self.coll.extend(
            self.states
                .iter()
                .map(|s| s.next_nonempty_after(after).unwrap_or(u64::MAX)),
        );
        let k = allreduce_min(&self.coll, &mut self.comm);
        self.ledger
            .charge_collective(self.model, TimeClass::Bucket, self.p);
        (k != u64::MAX).then_some(k)
    }

    /// The window-selection collective: min-reduce the per-rank window
    /// proposals for the epoch starting at bucket `k`. Only policies whose
    /// [`WindowRule`] extends past a single bucket issue it.
    pub(super) fn window_collective(&mut self, k: u64) -> u64 {
        self.coll.clear();
        let policy = self.policy;
        let dg = self.dg;
        self.coll.extend(
            self.states
                .iter()
                .map(|s| policy.window_proposal(s, &dg.locals[s.rank], k)),
        );
        let hi = allreduce_min_window(&self.coll, &mut self.comm);
        self.ledger
            .charge_collective(self.model, TimeClass::Bucket, self.p);
        hi
    }

    /// The point-to-point cutoff collective: min-reduce the target's
    /// tentative distance (its owner contributes `dist[target]`, every
    /// other rank contributes INF — mirroring the threaded backend, where
    /// the owner is the only rank with the value in memory).
    pub(super) fn target_distance_collective(&mut self, tv: VertexId) -> u64 {
        let owner = self.dg.part.owner(tv);
        let local = self.dg.part.local_index(tv) as usize;
        self.coll.clear();
        let states = &self.states;
        self.coll.extend((0..self.p).map(|r| {
            if r == owner {
                states[r].dist[local]
            } else {
                INF
            }
        }));
        let td = allreduce_min(&self.coll, &mut self.comm);
        self.ledger
            .charge_collective(self.model, TimeClass::Bucket, self.p);
        td
    }

    /// The per-query deadline collective: every rank contributes whether
    /// its clock has passed the deadline, and the run stops iff any rank
    /// says so. The simulator's ranks share one clock, so one wall read
    /// fans out to every contribution — the collective still travels so
    /// the schedule (and its fingerprint) stays aligned with the threaded
    /// backend's `epoch.deadline`.
    pub(super) fn deadline_collective(&mut self) -> bool {
        let expired = self.deadline.is_some_and(|d| Instant::now() >= d);
        self.coll.clear();
        self.coll.extend((0..self.p).map(|_| u64::from(expired)));
        let any = allreduce_max(&self.coll, &mut self.comm) != 0;
        self.ledger
            .charge_collective(self.model, TimeClass::Bucket, self.p);
        any
    }

    pub(super) fn any_active(&mut self) -> bool {
        self.coll.clear();
        self.coll
            .extend(self.states.iter().map(|s| u64::from(!s.active.is_empty())));
        let any = allreduce_max(&self.coll, &mut self.comm) != 0;
        self.ledger
            .charge_collective(self.model, TimeClass::Bucket, self.p);
        any
    }

    // -- shared phase plumbing ---------------------------------------------

    pub(super) fn begin_superstep(&mut self) {
        if !self.cfg.pooled_buffers {
            // Fresh-allocation mode: drop the pooled capacity so every
            // superstep re-allocates, exactly like the pre-pool engine.
            // Only the relax buffers are safe to drop here — a pull phase
            // calls begin_superstep between exchanging and *processing* its
            // request inboxes, so `req_bufs` resets at its own fill site.
            self.relax_bufs.reset_capacity();
        }
        self.states.par_iter_mut().for_each(|st| {
            st.begin_phase();
            st.loads.reset();
        });
    }

    pub(super) fn max_thread_ops(&self) -> u64 {
        self.states.iter().map(|s| s.loads.max()).max().unwrap_or(0)
    }

    /// Pack + exchange the relax buffers: each outbox lane becomes one
    /// target-sorted run (sorted by `(target, nd)`), so the receiver can
    /// apply it as a sequential min-merge; with coalescing enabled the
    /// sort additionally collapses duplicate targets to their minimum, so
    /// only the smallest tentative distance per target crosses the wire.
    /// The removed-message count rides on the returned step record.
    pub(super) fn exchange_relax(&mut self) -> StepStats {
        let dedup = self.cfg.coalescing;
        let saved: u64 = self
            .relax_bufs
            .outboxes
            .iter_mut()
            .flat_map(|ob| ob.out.iter_mut())
            .map(|lane| pack_sorted_run(lane, |m| m.target, |m| m.nd, dedup))
            .sum();
        let mut step = self
            .relax_bufs
            .exchange(RELAX_BYTES, self.model.packet.as_ref());
        step.coalesced_msgs = saved;
        step
    }

    pub(super) fn charge_exchange(&mut self, step: &StepStats) {
        let bytes = step.max_rank_send_bytes.max(step.max_rank_recv_bytes);
        let ops = self.max_thread_ops();
        self.ledger
            .charge_superstep(self.model, TimeClass::Relax, ops, bytes);
    }

    /// Whether any short edge exists at all for the policy's short bound
    /// (lets the Dijkstra configuration skip its necessarily-empty short
    /// stages). The `m_directed` guard keeps an edgeless graph (whose
    /// weight extremes are the degenerate (0, 0)) out of the short stages.
    pub(super) fn has_short_edges(&self) -> bool {
        self.dg.m_directed > 0 && (self.min_weight as u64) < self.policy.short_bound()
    }

    // -- epoch processing ---------------------------------------------------

    fn process_window(&mut self, window: EpochWindow) {
        // Collect the epoch's initial active set from the window.
        let scan_max = self
            .states
            .par_iter_mut()
            .map(|st| {
                st.collect_active_from_window(window.lo, window.hi);
                st.window_scan_len(window.lo, window.hi) as u64
            })
            .reduce_with(u64::max)
            .unwrap_or(0);
        self.ledger
            .charge_scan(self.model, TimeClass::Bucket, scan_max);

        // Stage 1: short-edge phases.
        if self.has_short_edges() {
            // sssp-lint: protocol: short.active-any
            while self.any_active() {
                // sssp-lint: protocol: short.exchange-relax
                self.short_phase(window);
            }
        }

        // Stage 2: long-edge phase, push or pull.
        // sssp-lint: protocol: decide.estimates
        let (mode, est_push, est_pull) = self.decide(&window);
        let mut record = BucketRecord {
            bucket: window.lo,
            settled: 0,
            mode,
            est_push,
            est_pull,
            self_edges: 0,
            backward_edges: 0,
            forward_edges: 0,
            requests: 0,
            responses: 0,
            supersteps: 0,
            local_msgs: 0,
            remote_msgs: 0,
            coalesced_msgs: 0,
        };
        match mode {
            LongPhaseMode::Push => self.long_push(window, &mut record),
            LongPhaseMode::Pull => self.long_pull(window, &mut record),
        }
        // The recorder fills the per-epoch traffic fields from the
        // supersteps recorded since the previous bucket closed.
        self.stats.bucket(record);
    }
}

mod bellman_ford;
mod decide;
mod invariants;
mod kernels;
mod long_pull;
mod long_push;
/// The backend-neutral telemetry recorder ([`record::Recorder`]) and the
/// per-rank trace merge of the threaded backend.
pub mod record;
mod short;
/// The real-thread backend: the same epoch loop on one OS thread per rank.
pub mod threaded;

#[cfg(test)]
mod tests;
