//! Rank-local bodies of the relaxation phases, shared by both backends.
//!
//! The simulated engine ([`super::Engine`]) calls these once per rank
//! inside its parallel iterators; the real-thread engine
//! ([`super::threaded`]) calls the very same functions on each rank's own
//! OS thread. Every kernel reads and writes exactly one rank's
//! [`RankState`] and emits messages through a caller-supplied sink, so the
//! two backends cannot drift apart: there is one implementation of the
//! relaxation logic, and the backends differ only in how the emitted
//! messages travel.
//!
//! Thread-load accounting (`loads.charge` / `charge_recv`) lives inside
//! the kernels too — it is part of the paper's per-phase work definition,
//! not a transport concern.

use sssp_dist::{LocalGraph, Partition};

use crate::config::DeltaParam;
use crate::state::{RankState, INF};

use super::{invariants, RelaxMsg, ReqMsg};

/// Bucket base distance `kΔ` of bucket `k` (eq. 1's pull threshold uses
/// `d(v) − kΔ`). Zero under Δ = ∞, where a single bucket spans everything.
#[inline]
pub(super) fn k_delta(delta: &DeltaParam, k: u64) -> u64 {
    match *delta {
        DeltaParam::Finite(d) => k * d as u64,
        DeltaParam::Infinite => 0,
    }
}

/// Row index where the long-phase push range of `u` starts: with IOS the
/// suffix of edges that could not have been relaxed as inner shorts
/// (`w > bucket_end − d(u)`), otherwise the long edges (`w ≥ Δ`).
#[inline]
pub(super) fn push_range_start(
    ios: bool,
    ws: &[u32],
    du: u64,
    bucket_end: u64,
    short_bound: u64,
) -> usize {
    if ios {
        let bound = (bucket_end - du).min(short_bound.saturating_sub(1));
        ws.partition_point(|&w| (w as u64) <= bound)
    } else {
        ws.partition_point(|&w| (w as u64) < short_bound)
    }
}

/// One rank's send side of a short phase (§II / §III-A): relax the (inner)
/// short edges of the active vertices. Returns the number of relaxations
/// produced.
#[allow(clippy::too_many_arguments)]
pub(super) fn short_send(
    lg: &LocalGraph,
    part: &Partition,
    st: &mut RankState,
    k: u64,
    delta: &DeltaParam,
    ios: bool,
    pi: u64,
    send: &mut impl FnMut(usize, RelaxMsg),
) -> u64 {
    let short_bound = delta.short_bound();
    let bucket_end = delta.bucket_end(k);
    let mut sent = 0u64;
    for &u in &st.active {
        let ul = u as usize;
        debug_assert_eq!(st.bucket_of[ul], k);
        let du = st.dist[ul];
        debug_assert!(du <= bucket_end);
        let (ts, ws) = lg.row(ul);
        let hi = if ios {
            // Inner short edges only: d(u) + w must stay inside the
            // bucket (and the edge must be short).
            let bound = (bucket_end - du).min(short_bound.saturating_sub(1));
            ws.partition_point(|&w| (w as u64) <= bound)
        } else {
            ws.partition_point(|&w| (w as u64) < short_bound)
        };
        for i in 0..hi {
            let v = ts[i];
            invariants::check_ios_inner_edge(ios, ws[i], du, short_bound, bucket_end);
            send(
                part.owner(v),
                RelaxMsg {
                    target: part.local_index(v),
                    nd: du + ws[i] as u64,
                },
            );
        }
        let heavy = (lg.degree(ul) as u64) > pi;
        st.loads.charge(ul, hi as u64, heavy);
        sent += hi as u64;
    }
    sent
}

/// One rank's receive side of a relax superstep: apply every delivered
/// proposal as a min-reduction.
pub(super) fn apply_relax(
    st: &mut RankState,
    delta: &DeltaParam,
    msgs: impl Iterator<Item = RelaxMsg>,
) {
    for m in msgs {
        st.charge_recv(m.target);
        st.relax(m.target, m.nd, delta);
    }
}

/// Receive side of a long push phase with the §III-B / Fig 7 receiver-side
/// classification: each delivered edge is self, backward or forward,
/// judged against the target's bucket *before* applying. Returns
/// `(self, backward, forward)` counts.
pub(super) fn classify_apply_relax(
    st: &mut RankState,
    k: u64,
    delta: &DeltaParam,
    msgs: impl Iterator<Item = RelaxMsg>,
) -> (u64, u64, u64) {
    let (mut se, mut be, mut fe) = (0u64, 0u64, 0u64);
    for m in msgs {
        let b = st.bucket_of[m.target as usize];
        if b == k {
            se += 1;
        } else if b < k {
            be += 1;
        } else {
            fe += 1;
        }
        st.charge_recv(m.target);
        st.relax(m.target, m.nd, delta);
    }
    (se, be, fe)
}

/// One rank's send side of a push-mode long phase (§III-B): every vertex
/// settled in the current bucket relaxes its long (and, under IOS,
/// outer-short) edges outward. Collects the bucket's active set itself.
/// Returns `(outer_short, long)` relaxation counts.
#[allow(clippy::too_many_arguments)]
pub(super) fn long_push_send(
    lg: &LocalGraph,
    part: &Partition,
    st: &mut RankState,
    k: u64,
    delta: &DeltaParam,
    ios: bool,
    pi: u64,
    send: &mut impl FnMut(usize, RelaxMsg),
) -> (u64, u64) {
    let short_bound = delta.short_bound();
    let bucket_end = delta.bucket_end(k);
    let (mut outer, mut long) = (0u64, 0u64);
    st.collect_active_from_bucket(k);
    for i in 0..st.active.len() {
        let ul = st.active[i] as usize;
        let du = st.dist[ul];
        let (ts, ws) = lg.row(ul);
        let start = push_range_start(ios, ws, du, bucket_end, short_bound);
        for j in start..ts.len() {
            let v = ts[j];
            send(
                part.owner(v),
                RelaxMsg {
                    target: part.local_index(v),
                    nd: du + ws[j] as u64,
                },
            );
            if (ws[j] as u64) < short_bound {
                outer += 1;
            } else {
                long += 1;
            }
        }
        let heavy = (lg.degree(ul) as u64) > pi;
        st.loads.charge(ul, (ts.len() - start) as u64, heavy);
    }
    (outer, long)
}

/// One rank's send side of a pull phase's IOS sub-step 0: the settled
/// bucket's outer short edges are not covered by the pull protocol
/// (requests target long edges), so push them directly. Collects the
/// bucket's active set itself. Returns the number of outer-short
/// relaxations produced.
pub(super) fn outer_short_send(
    lg: &LocalGraph,
    part: &Partition,
    st: &mut RankState,
    k: u64,
    delta: &DeltaParam,
    pi: u64,
    send: &mut impl FnMut(usize, RelaxMsg),
) -> u64 {
    let short_bound = delta.short_bound();
    let bucket_end = delta.bucket_end(k);
    let mut outer = 0u64;
    st.collect_active_from_bucket(k);
    for i in 0..st.active.len() {
        let ul = st.active[i] as usize;
        let du = st.dist[ul];
        let (ts, ws) = lg.row(ul);
        let start = push_range_start(true, ws, du, bucket_end, short_bound);
        let long_start = ws.partition_point(|&w| (w as u64) < short_bound);
        for j in start..long_start {
            let v = ts[j];
            send(
                part.owner(v),
                RelaxMsg {
                    target: part.local_index(v),
                    nd: du + ws[j] as u64,
                },
            );
            outer += 1;
        }
        let heavy = (lg.degree(ul) as u64) > pi;
        st.loads.charge(ul, (long_start - start) as u64, heavy);
    }
    outer
}

/// One rank's send side of a pull phase's request sub-step (§III-B):
/// every unsettled vertex v asks along each long edge that could still
/// improve it, `w(e) < d(v) − kΔ` (eq. 1). Returns
/// `(requests, vertices_scanned)`.
pub(super) fn pull_request_send(
    lg: &LocalGraph,
    part: &Partition,
    st: &mut RankState,
    k: u64,
    delta: &DeltaParam,
    pi: u64,
    send: &mut impl FnMut(usize, ReqMsg),
) -> (u64, u64) {
    let short_bound = delta.short_bound();
    let kd = k_delta(delta, k);
    let mut reqs = 0u64;
    let mut scanned = 0u64;
    for vl in 0..st.n_local() {
        if st.bucket_of[vl] <= k {
            continue;
        }
        scanned += 1;
        let dv = st.dist[vl];
        let threshold = if dv == INF { u64::MAX } else { dv - kd };
        let (ts, ws) = lg.row(vl);
        let lo = ws.partition_point(|&w| (w as u64) < short_bound);
        let hi = ws.partition_point(|&w| (w as u64) < threshold);
        if hi <= lo {
            continue;
        }
        let origin = part.to_global(st.rank, vl);
        for i in lo..hi {
            let u = ts[i];
            invariants::check_pull_request(ws[i], dv, kd, short_bound);
            send(
                part.owner(u),
                ReqMsg {
                    u_local: part.local_index(u),
                    origin,
                    w: ws[i],
                },
            );
        }
        let heavy = (lg.degree(vl) as u64) > pi;
        st.loads.charge(vl, (hi - lo) as u64, heavy);
        reqs += (hi - lo) as u64;
    }
    (reqs, scanned)
}

/// One rank's response side of a pull phase (§III-B): only sources settled
/// in the current bucket answer; everything else is the redundancy being
/// pruned away. Returns the number of responses produced.
pub(super) fn pull_respond(
    part: &Partition,
    st: &mut RankState,
    k: u64,
    reqs: impl Iterator<Item = ReqMsg>,
    send: &mut impl FnMut(usize, RelaxMsg),
) -> u64 {
    let mut responses = 0u64;
    for r in reqs {
        st.charge_recv(r.u_local);
        if st.bucket_of[r.u_local as usize] == k {
            let nd = st.dist[r.u_local as usize] + r.w as u64;
            send(
                part.owner(r.origin),
                RelaxMsg {
                    target: part.local_index(r.origin),
                    nd,
                },
            );
            responses += 1;
        }
    }
    responses
}

/// One rank's send side of a Bellman-Ford round (§III-D): relax every edge
/// of every active vertex. Returns the number of relaxations produced.
pub(super) fn bf_send(
    lg: &LocalGraph,
    part: &Partition,
    st: &mut RankState,
    pi: u64,
    send: &mut impl FnMut(usize, RelaxMsg),
) -> u64 {
    let mut sent = 0u64;
    for &u in &st.active {
        let ul = u as usize;
        let du = st.dist[ul];
        let (ts, ws) = lg.row(ul);
        for i in 0..ts.len() {
            let v = ts[i];
            send(
                part.owner(v),
                RelaxMsg {
                    target: part.local_index(v),
                    nd: du + ws[i] as u64,
                },
            );
        }
        let heavy = (lg.degree(ul) as u64) > pi;
        st.loads.charge(ul, ts.len() as u64, heavy);
        sent += ts.len() as u64;
    }
    sent
}
