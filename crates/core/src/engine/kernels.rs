//! Rank-local bodies of the relaxation phases, shared by both backends.
//!
//! The simulated engine ([`super::Engine`]) calls these once per rank
//! inside its parallel iterators; the real-thread engine
//! ([`super::threaded`]) calls the very same functions on each rank's own
//! OS thread. Every kernel reads and writes exactly one rank's
//! [`RankState`] and emits messages through a caller-supplied sink, so the
//! two backends cannot drift apart: there is one implementation of the
//! relaxation logic, and the backends differ only in how the emitted
//! messages travel.
//!
//! The kernels cut edges against an [`EpochWindow`], not a raw bucket:
//! the stepping policy resolves each epoch's window once, and everything
//! the kernels need — the bucket range, the distance bounds, the
//! short/long boundary — rides inside it. Under Δ-stepping the window
//! degenerates to the classic single bucket `k`, so these are the same
//! phases the paper describes. Only the receive side (bucket placement of
//! improved vertices) needs the policy itself.
//!
//! Thread-load accounting (`loads.charge` / `charge_recv`) lives inside
//! the kernels too — it is part of the paper's per-phase work definition,
//! not a transport concern.

use sssp_dist::{LocalGraph, Partition};

use crate::policy::{EpochWindow, SteppingPolicy};
use crate::state::{RankState, INF};

use super::{invariants, RelaxMsg, ReqMsg};

/// Row index where the long-phase push range of `u` starts: with IOS the
/// suffix of edges that could not have been relaxed as inner shorts
/// (`w > end_dist − d(u)`), otherwise the long edges (`w ≥ short_bound`).
#[inline]
pub(super) fn push_range_start(
    ios: bool,
    ws: &[u32],
    du: u64,
    end_dist: u64,
    short_bound: u64,
) -> usize {
    if ios {
        let bound = (end_dist - du).min(short_bound.saturating_sub(1));
        ws.partition_point(|&w| (w as u64) <= bound)
    } else {
        ws.partition_point(|&w| (w as u64) < short_bound)
    }
}

/// One rank's send side of a short phase (§II / §III-A): relax the (inner)
/// short edges of the active vertices. Returns the number of relaxations
/// produced.
pub(super) fn short_send(
    lg: &LocalGraph,
    part: &Partition,
    st: &mut RankState,
    window: &EpochWindow,
    ios: bool,
    pi: u64,
    send: &mut impl FnMut(usize, RelaxMsg),
) -> u64 {
    let short_bound = window.short_bound;
    let end_dist = window.end_dist;
    let mut sent = 0u64;
    for wi in 0..st.active.num_words() {
        let mut word = st.active.word(wi);
        while word != 0 {
            let u = sssp_graph::checked_u32(wi * 64) + word.trailing_zeros();
            word &= word - 1;
            let ul = u as usize;
            debug_assert!(window.contains(st.bucket_of[ul]));
            let du = st.dist[ul];
            debug_assert!(du <= end_dist);
            let (ts, ws) = lg.row(ul);
            let hi = if ios {
                // Inner short edges only: d(u) + w must stay inside the
                // window (and the edge must be short).
                let bound = (end_dist - du).min(short_bound.saturating_sub(1));
                ws.partition_point(|&w| (w as u64) <= bound)
            } else {
                ws.partition_point(|&w| (w as u64) < short_bound)
            };
            for i in 0..hi {
                let v = ts[i];
                invariants::check_ios_inner_edge(ios, ws[i], du, short_bound, end_dist);
                send(
                    part.owner(v),
                    RelaxMsg {
                        target: part.local_index(v),
                        nd: du + ws[i] as u64,
                    },
                );
            }
            let heavy = (lg.degree(ul) as u64) > pi;
            st.loads.charge(ul, hi as u64, heavy);
            sent += hi as u64;
        }
    }
    sent
}

/// One rank's receive side of a relax superstep: apply every delivered
/// proposal as a min-reduction. Inboxes arrive as concatenated
/// target-sorted runs (one per sender lane), so a repeated target with a
/// non-decreasing distance cannot improve — the min-merge skips the relax
/// call outright. Observationally identical to relaxing every message.
pub(super) fn apply_relax<P: SteppingPolicy>(
    st: &mut RankState,
    policy: &P,
    msgs: impl Iterator<Item = RelaxMsg>,
) {
    let mut prev: Option<(u32, u64)> = None;
    for m in msgs {
        st.charge_recv(m.target);
        if let Some((pt, pn)) = prev {
            if pt == m.target && m.nd >= pn {
                continue;
            }
        }
        st.relax(m.target, m.nd, policy);
        prev = Some((m.target, m.nd));
    }
}

/// Receive side of a long push phase with the §III-B / Fig 7 receiver-side
/// classification: each delivered edge is self, backward or forward,
/// judged against the target's bucket *before* applying. Returns
/// `(self, backward, forward)` counts.
pub(super) fn classify_apply_relax<P: SteppingPolicy>(
    st: &mut RankState,
    window: &EpochWindow,
    policy: &P,
    msgs: impl Iterator<Item = RelaxMsg>,
) -> (u64, u64, u64) {
    let (mut se, mut be, mut fe) = (0u64, 0u64, 0u64);
    for m in msgs {
        let b = st.bucket_of[m.target as usize];
        if window.contains(b) {
            se += 1;
        } else if b < window.lo {
            be += 1;
        } else {
            fe += 1;
        }
        st.charge_recv(m.target);
        st.relax(m.target, m.nd, policy);
    }
    (se, be, fe)
}

/// One rank's send side of a push-mode long phase (§III-B): every vertex
/// settled in the current window relaxes its long (and, under IOS,
/// outer-short) edges outward. Collects the window's active set itself.
/// Returns `(outer_short, long)` relaxation counts.
pub(super) fn long_push_send(
    lg: &LocalGraph,
    part: &Partition,
    st: &mut RankState,
    window: &EpochWindow,
    ios: bool,
    pi: u64,
    send: &mut impl FnMut(usize, RelaxMsg),
) -> (u64, u64) {
    let short_bound = window.short_bound;
    let end_dist = window.end_dist;
    let (mut outer, mut long) = (0u64, 0u64);
    st.collect_active_from_window(window.lo, window.hi);
    for wi in 0..st.active.num_words() {
        let mut word = st.active.word(wi);
        while word != 0 {
            let u = sssp_graph::checked_u32(wi * 64) + word.trailing_zeros();
            word &= word - 1;
            let ul = u as usize;
            let du = st.dist[ul];
            let (ts, ws) = lg.row(ul);
            let start = push_range_start(ios, ws, du, end_dist, short_bound);
            for j in start..ts.len() {
                let v = ts[j];
                send(
                    part.owner(v),
                    RelaxMsg {
                        target: part.local_index(v),
                        nd: du + ws[j] as u64,
                    },
                );
                if (ws[j] as u64) < short_bound {
                    outer += 1;
                } else {
                    long += 1;
                }
            }
            let heavy = (lg.degree(ul) as u64) > pi;
            st.loads.charge(ul, (ts.len() - start) as u64, heavy);
        }
    }
    (outer, long)
}

/// One rank's send side of a pull phase's IOS sub-step 0: the settled
/// window's outer short edges are not covered by the pull protocol
/// (requests target long edges), so push them directly. Collects the
/// window's active set itself. Returns the number of outer-short
/// relaxations produced.
pub(super) fn outer_short_send(
    lg: &LocalGraph,
    part: &Partition,
    st: &mut RankState,
    window: &EpochWindow,
    pi: u64,
    send: &mut impl FnMut(usize, RelaxMsg),
) -> u64 {
    let short_bound = window.short_bound;
    let end_dist = window.end_dist;
    let mut outer = 0u64;
    st.collect_active_from_window(window.lo, window.hi);
    for wi in 0..st.active.num_words() {
        let mut word = st.active.word(wi);
        while word != 0 {
            let u = sssp_graph::checked_u32(wi * 64) + word.trailing_zeros();
            word &= word - 1;
            let ul = u as usize;
            let du = st.dist[ul];
            let (ts, ws) = lg.row(ul);
            let start = push_range_start(true, ws, du, end_dist, short_bound);
            let long_start = ws.partition_point(|&w| (w as u64) < short_bound);
            for j in start..long_start {
                let v = ts[j];
                send(
                    part.owner(v),
                    RelaxMsg {
                        target: part.local_index(v),
                        nd: du + ws[j] as u64,
                    },
                );
                outer += 1;
            }
            let heavy = (lg.degree(ul) as u64) > pi;
            st.loads.charge(ul, (long_start - start) as u64, heavy);
        }
    }
    outer
}

/// One rank's send side of a pull phase's request sub-step (§III-B):
/// every unsettled vertex v asks along each long edge that could still
/// improve it, `w(e) < d(v) − start_dist` (eq. 1, with the window's start
/// distance as the `kΔ` base). Returns `(requests, vertices_scanned)`.
pub(super) fn pull_request_send(
    lg: &LocalGraph,
    part: &Partition,
    st: &mut RankState,
    window: &EpochWindow,
    pi: u64,
    send: &mut impl FnMut(usize, ReqMsg),
) -> (u64, u64) {
    let short_bound = window.short_bound;
    let kd = window.start_dist;
    let mut reqs = 0u64;
    let mut scanned = 0u64;
    for vl in 0..st.n_local() {
        if st.bucket_of[vl] <= window.hi {
            continue;
        }
        scanned += 1;
        let dv = st.dist[vl];
        let threshold = if dv == INF { u64::MAX } else { dv - kd };
        let (ts, ws) = lg.row(vl);
        let lo = ws.partition_point(|&w| (w as u64) < short_bound);
        let hi = ws.partition_point(|&w| (w as u64) < threshold);
        if hi <= lo {
            continue;
        }
        let origin = part.to_global(st.rank, vl);
        for i in lo..hi {
            let u = ts[i];
            invariants::check_pull_request(ws[i], dv, kd, short_bound);
            send(
                part.owner(u),
                ReqMsg {
                    u_local: part.local_index(u),
                    origin,
                    w: ws[i],
                },
            );
        }
        let heavy = (lg.degree(vl) as u64) > pi;
        st.loads.charge(vl, (hi - lo) as u64, heavy);
        reqs += (hi - lo) as u64;
    }
    (reqs, scanned)
}

/// One rank's response side of a pull phase (§III-B): only sources settled
/// in the current window answer; everything else is the redundancy being
/// pruned away. Returns the number of responses produced.
pub(super) fn pull_respond(
    part: &Partition,
    st: &mut RankState,
    window: &EpochWindow,
    reqs: impl Iterator<Item = ReqMsg>,
    send: &mut impl FnMut(usize, RelaxMsg),
) -> u64 {
    let mut responses = 0u64;
    for r in reqs {
        st.charge_recv(r.u_local);
        if window.contains(st.bucket_of[r.u_local as usize]) {
            let nd = st.dist[r.u_local as usize] + r.w as u64;
            send(
                part.owner(r.origin),
                RelaxMsg {
                    target: part.local_index(r.origin),
                    nd,
                },
            );
            responses += 1;
        }
    }
    responses
}

/// One rank's send side of a Bellman-Ford round (§III-D): relax every edge
/// of every active vertex. Returns the number of relaxations produced.
pub(super) fn bf_send(
    lg: &LocalGraph,
    part: &Partition,
    st: &mut RankState,
    pi: u64,
    send: &mut impl FnMut(usize, RelaxMsg),
) -> u64 {
    let mut sent = 0u64;
    for wi in 0..st.active.num_words() {
        let mut word = st.active.word(wi);
        while word != 0 {
            let u = sssp_graph::checked_u32(wi * 64) + word.trailing_zeros();
            word &= word - 1;
            let ul = u as usize;
            let du = st.dist[ul];
            let (ts, ws) = lg.row(ul);
            for i in 0..ts.len() {
                let v = ts[i];
                send(
                    part.owner(v),
                    RelaxMsg {
                        target: part.local_index(v),
                        nd: du + ws[i] as u64,
                    },
                );
            }
            let heavy = (lg.degree(ul) as u64) > pi;
            st.loads.charge(ul, ts.len() as u64, heavy);
            sent += ts.len() as u64;
        }
    }
    sent
}
