//! The run-telemetry recorder: one abstraction both backends feed their
//! per-superstep, per-phase and per-bucket observations through.
//!
//! The simulated engine records into its [`RunStats`] directly (stats are
//! the whole point of simulation, so its recorder is always on). The
//! real-thread engine is generic over [`Recorder`]: the wall-clock entry
//! point instantiates the zero-sized [`NoopRecorder`] — every call inlines
//! to nothing, keeping the benchmarked hot path clean — while the traced
//! entry point gives each rank its own `RunStats` and merges the per-rank
//! [`RunTrace`]s deterministically after `run_threaded` joins
//! ([`merge_rank_traces`]): rank-local volumes sum, per-step maxima
//! combine by max (max is commutative, so per-rank-then-merge equals the
//! simulator's per-step global max), and globally allreduced quantities
//! (mode, estimates, settled counts) are asserted identical across ranks.

use sssp_comm::stats::StepStats;

use crate::instrument::{BucketRecord, PhaseRecord, RunStats, RunTrace};

/// Sink for one backend run's telemetry events. All methods default to
/// no-ops so a disabled recorder costs nothing; `enabled` lets callers
/// skip work that exists only to be recorded (e.g. the heuristic volume
/// pass under a forced direction policy).
pub trait Recorder {
    /// Whether this recorder stores anything at all. Must be uniform
    /// across ranks of one run (it steers collective-bearing code paths).
    fn enabled(&self) -> bool {
        false
    }
    /// One data-exchange superstep completed with the given traffic.
    fn superstep(&mut self, _step: &StepStats) {}
    /// One relaxation phase (a short round, a long push, a whole pull
    /// phase, or a Bellman-Ford round) completed.
    fn phase(&mut self, _rec: &PhaseRecord) {}
    /// Wall-clock nanoseconds one phase of `kind` took on this rank,
    /// including the rendezvous wait inside its exchanges. Only the
    /// threaded backend reports these; the simulated engine never calls
    /// this hook, so its traces keep all-zero timings.
    fn phase_nanos(&mut self, _kind: crate::instrument::PhaseKind, _ns: u64) {}
    /// One Δ-bucket epoch completed. The recorder fills the record's
    /// per-epoch traffic fields from the supersteps since the last bucket.
    fn bucket(&mut self, _rec: BucketRecord) {}
    /// The settled count of the bucket recorded last.
    fn settled(&mut self, _settled: u64) {}
    /// The hybrid τ switch fired after bucket `_bucket`.
    fn hybrid_switch(&mut self, _bucket: u64) {}
    /// The run is over: flush the hybrid tail's pseudo-bucket record.
    fn finish(&mut self) {}
}

/// The zero-cost disabled recorder (the wall-clock bench path).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl Recorder for RunStats {
    fn enabled(&self) -> bool {
        true
    }

    fn superstep(&mut self, step: &StepStats) {
        self.comm.record(*step);
    }

    fn phase(&mut self, rec: &PhaseRecord) {
        self.phases += 1;
        self.phase_records.push(*rec);
    }

    fn phase_nanos(&mut self, kind: crate::instrument::PhaseKind, ns: u64) {
        self.wall.add(kind, ns);
    }

    fn bucket(&mut self, mut rec: BucketRecord) {
        let (supersteps, local, remote, coalesced) = self.epoch_window();
        rec.supersteps = supersteps;
        rec.local_msgs = local;
        rec.remote_msgs = remote;
        rec.coalesced_msgs = coalesced;
        self.bucket_records.push(rec);
    }

    fn settled(&mut self, settled: u64) {
        if let Some(rec) = self.bucket_records.last_mut() {
            rec.settled = settled;
        }
    }

    fn hybrid_switch(&mut self, bucket: u64) {
        self.hybrid_switch_at = Some(bucket);
    }

    fn finish(&mut self) {
        if self.hybrid_switch_at.is_some() {
            let (supersteps, local, remote, coalesced) = self.epoch_window();
            self.tail_record = Some(BucketRecord {
                bucket: u64::MAX,
                settled: 0,
                mode: crate::config::LongPhaseMode::Push,
                est_push: 0,
                est_pull: 0,
                self_edges: 0,
                backward_edges: 0,
                forward_edges: 0,
                requests: 0,
                responses: 0,
                supersteps,
                local_msgs: local,
                remote_msgs: remote,
                coalesced_msgs: coalesced,
            });
        }
    }
}

/// Merge the per-rank traces of one threaded run into the run's global
/// trace. Rank-local volumes (message and byte counts, relaxations) sum;
/// per-superstep maxima combine by max; quantities every rank obtained
/// from the same allreduce (bucket ids, modes, estimates, settled counts,
/// superstep counts) are asserted identical — a mismatch means the SPMD
/// contract broke, which must abort rather than produce a silently wrong
/// trace.
pub(super) fn merge_rank_traces(traces: Vec<RunTrace>) -> RunTrace {
    let mut it = traces.into_iter();
    // sssp-lint: allow(no-panic-hot-path): post-join merge, not a hot path;
    // run_threaded always returns one result per rank.
    let mut merged = it.next().expect("at least one rank trace");
    for t in it {
        assert_eq!(merged.ranks, t.ranks, "rank count drift across ranks");
        assert_eq!(
            merged.supersteps, t.supersteps,
            "superstep count drift across ranks"
        );
        assert_eq!(
            merged.hybrid_switch_at, t.hybrid_switch_at,
            "hybrid switch drift across ranks"
        );
        merged.local_msgs += t.local_msgs;
        merged.remote_msgs += t.remote_msgs;
        merged.remote_bytes += t.remote_bytes;
        merged.coalesced_msgs += t.coalesced_msgs;
        merged.max_step_send_bytes = merged.max_step_send_bytes.max(t.max_step_send_bytes);
        merged.max_step_recv_bytes = merged.max_step_recv_bytes.max(t.max_step_recv_bytes);
        // Per-phase wall clock: the slowest rank bounds a BSP phase.
        merged.timings = merged.timings.max(&t.timings);
        assert_eq!(
            merged.phases.len(),
            t.phases.len(),
            "phase sequence drift across ranks"
        );
        for (m, r) in merged.phases.iter_mut().zip(&t.phases) {
            assert_eq!(m.bucket, r.bucket, "phase bucket drift across ranks");
            assert_eq!(m.kind, r.kind, "phase kind drift across ranks");
            m.relaxations += r.relaxations;
            m.remote_msgs += r.remote_msgs;
        }
        assert_eq!(
            merged.buckets.len(),
            t.buckets.len(),
            "bucket sequence drift across ranks"
        );
        for (m, r) in merged.buckets.iter_mut().zip(&t.buckets) {
            merge_bucket(m, r);
        }
        match (&mut merged.tail, &t.tail) {
            (Some(m), Some(r)) => merge_bucket(m, r),
            (None, None) => {}
            _ => assert_eq!(
                merged.tail.is_some(),
                t.tail.is_some(),
                "hybrid tail drift across ranks"
            ),
        }
    }
    merged
}

/// Fold one rank's bucket record into the merged record: globally reduced
/// fields must agree, rank-local volumes sum.
fn merge_bucket(m: &mut BucketRecord, r: &BucketRecord) {
    assert_eq!(m.bucket, r.bucket, "bucket id drift across ranks");
    assert_eq!(m.mode, r.mode, "long-phase mode drift across ranks");
    assert_eq!(m.est_push, r.est_push, "est_push drift across ranks");
    assert_eq!(m.est_pull, r.est_pull, "est_pull drift across ranks");
    assert_eq!(m.settled, r.settled, "settled count drift across ranks");
    assert_eq!(
        m.supersteps, r.supersteps,
        "epoch superstep drift across ranks"
    );
    m.self_edges += r.self_edges;
    m.backward_edges += r.backward_edges;
    m.forward_edges += r.forward_edges;
    m.requests += r.requests;
    m.responses += r.responses;
    m.local_msgs += r.local_msgs;
    m.remote_msgs += r.remote_msgs;
    m.coalesced_msgs += r.coalesced_msgs;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LongPhaseMode;
    use crate::instrument::PhaseKind;

    fn bucket(remote: u64) -> BucketRecord {
        BucketRecord {
            bucket: 1,
            settled: 6,
            mode: LongPhaseMode::Push,
            est_push: 12,
            est_pull: 20,
            self_edges: 1,
            backward_edges: 2,
            forward_edges: 3,
            requests: 0,
            responses: 0,
            supersteps: 2,
            local_msgs: 1,
            remote_msgs: remote,
            coalesced_msgs: 1,
        }
    }

    fn rank_trace(remote: u64, send_max: u64) -> RunTrace {
        RunTrace {
            backend: "threaded".to_string(),
            ranks: 2,
            supersteps: 2,
            local_msgs: 1,
            remote_msgs: remote,
            remote_bytes: remote * 16,
            coalesced_msgs: 1,
            max_step_send_bytes: send_max,
            max_step_recv_bytes: send_max / 2,
            hybrid_switch_at: None,
            timings: crate::instrument::PhaseTimings::default(),
            phases: vec![PhaseRecord {
                bucket: 1,
                kind: PhaseKind::Short,
                relaxations: 4,
                remote_msgs: remote,
            }],
            buckets: vec![bucket(remote)],
            tail: None,
        }
    }

    #[test]
    fn merge_sums_volumes_and_maxes_maxima() {
        let merged = merge_rank_traces(vec![rank_trace(10, 64), rank_trace(4, 160)]);
        assert_eq!(merged.remote_msgs, 14);
        assert_eq!(merged.remote_bytes, 14 * 16);
        assert_eq!(merged.local_msgs, 2);
        assert_eq!(merged.coalesced_msgs, 2);
        assert_eq!(merged.max_step_send_bytes, 160);
        assert_eq!(merged.max_step_recv_bytes, 80);
        // Globally reduced fields stay as-is.
        assert_eq!(merged.supersteps, 2);
        assert_eq!(merged.buckets[0].est_push, 12);
        assert_eq!(merged.buckets[0].settled, 6);
        // Rank-local bucket volumes sum.
        assert_eq!(merged.buckets[0].remote_msgs, 14);
        assert_eq!(merged.buckets[0].self_edges, 2);
        assert_eq!(merged.phases[0].relaxations, 8);
    }

    #[test]
    #[should_panic(expected = "est_push drift")]
    fn merge_rejects_global_field_drift() {
        let mut b = rank_trace(4, 64);
        b.buckets[0].est_push = 13;
        merge_rank_traces(vec![rank_trace(4, 64), b]);
    }

    #[test]
    fn noop_recorder_is_disabled() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
    }

    #[test]
    fn run_stats_recorder_builds_records() {
        let mut s = RunStats::default();
        assert!(Recorder::enabled(&s));
        s.superstep(&StepStats {
            local_msgs: 2,
            remote_msgs: 3,
            coalesced_msgs: 1,
            ..Default::default()
        });
        s.phase(&PhaseRecord {
            bucket: 0,
            kind: PhaseKind::Short,
            relaxations: 5,
            remote_msgs: 3,
        });
        s.bucket(bucket(0));
        s.settled(9);
        // The epoch fields came from the recorded superstep, not the
        // literal passed in.
        let rec = s.bucket_records[0];
        assert_eq!(rec.supersteps, 1);
        assert_eq!(rec.local_msgs, 2);
        assert_eq!(rec.remote_msgs, 3);
        assert_eq!(rec.coalesced_msgs, 1);
        assert_eq!(rec.settled, 9);
        assert_eq!(s.phases, 1);
        // A hybrid tail flushes the remaining steps at finish().
        s.superstep(&StepStats {
            remote_msgs: 7,
            ..Default::default()
        });
        s.hybrid_switch(0);
        s.finish();
        let tail = s.tail_record.expect("tail record");
        assert_eq!(tail.bucket, u64::MAX);
        assert_eq!(tail.supersteps, 1);
        assert_eq!(tail.remote_msgs, 7);
    }

    #[test]
    fn finish_without_hybrid_leaves_no_tail() {
        let mut s = RunStats::default();
        s.finish();
        assert!(s.tail_record.is_none());
    }
}
