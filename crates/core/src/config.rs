//! Algorithm configuration and the paper's named presets.

/// The Δ parameter. `Finite(1)` yields Dijkstra's algorithm (Dial's variant),
/// `Infinite` yields Bellman-Ford, anything between is Δ-stepping (§II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaParam {
    /// Bucket width Δ; distances map to bucket ⌊d/Δ⌋.
    Finite(u32),
    /// Δ = ∞: a single bucket (Bellman-Ford).
    Infinite,
}

impl DeltaParam {
    /// Bucket index of a finite tentative distance. The index is capped at
    /// `u64::MAX - 1`: the engine's epoch-selection collective reserves
    /// `u64::MAX` as its "no bucket left" sentinel, so under Δ = 1 with
    /// near-maximal distances a legitimate bucket index must never collide
    /// with it.
    #[inline]
    pub fn bucket_of(&self, d: u64) -> u64 {
        debug_assert!(d != u64::MAX, "bucket_of called on an INF distance");
        match *self {
            DeltaParam::Finite(delta) => (d / delta as u64).min(u64::MAX - 1),
            DeltaParam::Infinite => 0,
        }
    }

    /// Largest distance belonging to bucket `k` (inclusive). Saturates at
    /// the top of the distance range instead of overflowing for buckets
    /// near the `bucket_of` cap.
    #[inline]
    pub fn bucket_end(&self, k: u64) -> u64 {
        match *self {
            DeltaParam::Finite(delta) => (k + 1).saturating_mul(delta as u64).saturating_sub(1),
            DeltaParam::Infinite => u64::MAX - 1,
        }
    }

    /// The short/long weight boundary: an edge is short iff `w < Δ`.
    #[inline]
    pub fn short_bound(&self) -> u64 {
        match *self {
            DeltaParam::Finite(delta) => delta as u64,
            DeltaParam::Infinite => u64::MAX,
        }
    }
}

/// Which stepping policy drives bucket assignment and epoch-window
/// selection (see `crate::policy`). `Delta` is the paper's algorithm; the
/// other two are the Dong et al. / Blelloch et al. instances of the same
/// lazy-batched priority structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteppingPolicyKind {
    /// Classic Δ-stepping: buckets of width Δ, one bucket per epoch.
    Delta,
    /// ρ-stepping: Dial-granularity buckets, each epoch extracts (about)
    /// the globally closest ρ vertices as one window.
    Rho(u32),
    /// Radius stepping: Dial-granularity buckets, each epoch's window end
    /// is the frontier minimum of `d(v) + r(v)` with `r(v)` the ρ-th
    /// smallest incident edge weight.
    Radius(u32),
}

/// Which mechanism a long-edge phase uses (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LongPhaseMode {
    /// Owners of the current bucket send relaxations outward.
    Push,
    /// Owners of later buckets request candidate distances.
    Pull,
}

/// Per-bucket choice of the long-edge mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum DirectionPolicy {
    /// Always push — the natural model; equivalent to pruning disabled.
    AlwaysPush,
    /// Always pull (used by the §IV-G exhaustive study).
    AlwaysPull,
    /// The paper's decision heuristic (§III-C): per bucket, estimate the
    /// communication volume of both models and take the cheaper.
    Heuristic,
    /// Forced decisions per processed bucket, in processing order; buckets
    /// beyond the vector fall back to the heuristic. Used by the §IV-G
    /// validation harness to enumerate all 2^k decision sequences.
    Forced(Vec<LongPhaseMode>),
}

/// How the pull-volume estimate is computed. §III-C discusses all three:
/// binary search on weight-sorted adjacency, histogram range counts, and a
/// closed-form expectation for uniformly distributed weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PullEstimator {
    /// Exact count by binary search on the weight-sorted rows.
    Exact,
    /// Approximate count from per-vertex power-of-two weight histograms.
    Histogram,
    /// The paper's closed-form expectation for uniform weights.
    Expectation,
}

/// Intra-node thread-level load balancing (§III-E, first tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraBalance {
    /// No intra-node balancing: each thread keeps its own vertices.
    Off,
    /// Split edge processing of vertices with degree > π across threads.
    Threshold(u32),
    /// Pick π automatically: 4× the average degree, at least 64.
    Auto,
}

/// Full algorithm configuration. Compose via the presets or the builder
/// methods.
#[derive(Debug, Clone, PartialEq)]
pub struct SsspConfig {
    /// Bucket width Δ.
    pub delta: DeltaParam,
    /// Which stepping policy the engine runs. `Delta` uses `delta` as the
    /// bucket width; the other policies ignore `delta` and bucket at Dial
    /// granularity (one distance value per bucket).
    pub policy: SteppingPolicyKind,
    /// Inner/outer short-edge refinement (IOS heuristic, §III-A).
    pub ios: bool,
    /// How each long phase picks push vs pull.
    pub direction: DirectionPolicy,
    /// How pull-request volume is estimated for that decision.
    pub pull_estimator: PullEstimator,
    /// Imbalance-aware refinement of the decision heuristic (§III-C): also
    /// compare bottleneck-rank volumes, not just totals.
    pub imbalance_aware: bool,
    /// Hybridization threshold τ (§III-D): switch to Bellman-Ford once this
    /// fraction of vertices is settled. `None` disables hybridization.
    pub hybrid_tau: Option<f64>,
    /// Intra-node thread load balancing mode (π threshold).
    pub intra_balance: IntraBalance,
    /// Reuse outbox/inbox/scratch capacity across supersteps (the
    /// zero-allocation hot path). `false` drops every buffer at each
    /// superstep boundary — the historical allocation pattern, kept for
    /// differential testing and the allocation benchmark. Message flow is
    /// identical either way, so distances and comm statistics must match
    /// bit for bit.
    pub pooled_buffers: bool,
    /// Flat hot-path state layout (on by default): bucket members live in
    /// the lazy cyclic ring of flat lanes ([`crate::state::FLAT_LANES`])
    /// instead of the legacy `BTreeMap` bucket structure. Distances, the
    /// collective schedule and all message statistics are identical either
    /// way — the legacy layout is kept for one release as the differential
    /// baseline of the flat-layout proptests.
    pub flat_state: bool,
    /// Sender-side relaxation coalescing (on by default): before every
    /// exchange, each outbox lane is min-reduced per destination vertex so
    /// only the smallest tentative distance crosses the wire. Relaxation
    /// is an idempotent min-reduction, so final distances are unchanged;
    /// only message counts (and the receiver-side Fig 7 classification of
    /// the pruned duplicates) shrink.
    pub coalescing: bool,
}

impl SsspConfig {
    /// Baseline Δ-stepping with short/long edge classification — the
    /// paper's `Del-Δ`.
    pub fn del(delta: u32) -> Self {
        assert!(delta >= 1);
        SsspConfig {
            delta: DeltaParam::Finite(delta),
            policy: SteppingPolicyKind::Delta,
            ios: false,
            direction: DirectionPolicy::AlwaysPush,
            pull_estimator: PullEstimator::Exact,
            imbalance_aware: true,
            hybrid_tau: None,
            intra_balance: IntraBalance::Off,
            pooled_buffers: true,
            flat_state: true,
            coalescing: true,
        }
    }

    /// Dijkstra's algorithm: Δ-stepping with Δ = 1 (Dial's variant).
    pub fn dijkstra() -> Self {
        Self::del(1)
    }

    /// Bellman-Ford: Δ-stepping with Δ = ∞.
    pub fn bellman_ford() -> Self {
        let mut cfg = Self::del(1);
        cfg.delta = DeltaParam::Infinite;
        cfg
    }

    /// `Del-Δ` + IOS + push/pull pruning with the decision heuristic — the
    /// paper's `Prune-Δ`.
    pub fn prune(delta: u32) -> Self {
        let mut cfg = Self::del(delta);
        cfg.ios = true;
        cfg.direction = DirectionPolicy::Heuristic;
        cfg
    }

    /// `Prune-Δ` + hybridization (τ = 0.4, the paper's recommended value) —
    /// the paper's `OPT-Δ`.
    pub fn opt(delta: u32) -> Self {
        let mut cfg = Self::prune(delta);
        cfg.hybrid_tau = Some(0.4);
        cfg
    }

    /// `OPT-Δ` + intra-node thread load balancing — the paper's `LB-OPT`.
    /// (Inter-node vertex splitting is a graph transformation; apply
    /// [`sssp_dist::split_heavy_vertices`] before building the
    /// distributed graph.)
    pub fn lb_opt(delta: u32) -> Self {
        let mut cfg = Self::opt(delta);
        cfg.intra_balance = IntraBalance::Auto;
        cfg
    }

    /// ρ-stepping (Dong et al.): each epoch lazily extracts roughly the ρ
    /// globally closest unsettled vertices as one window. Buckets run at
    /// Dial granularity, so `delta` is inert; IOS keeps the in-window
    /// fixpoint from chasing edges that leave the window.
    pub fn rho(rho: u32) -> Self {
        assert!(rho >= 1, "ρ must be at least 1");
        let mut cfg = Self::del(1);
        cfg.policy = SteppingPolicyKind::Rho(rho);
        cfg.ios = true;
        cfg
    }

    /// Radius stepping (Blelloch et al.): each epoch's window reaches to
    /// the frontier minimum of `d(v) + r(v)`, where `r(v)` is the ρ-th
    /// smallest incident edge weight of `v`. Buckets run at Dial
    /// granularity, so `delta` is inert.
    pub fn radius(rho: u32) -> Self {
        assert!(rho >= 1, "ρ must be at least 1");
        let mut cfg = Self::del(1);
        cfg.policy = SteppingPolicyKind::Radius(rho);
        cfg.ios = true;
        cfg
    }

    /// Meyer and Sanders' recommendation for random edge weights:
    /// `Δ = Θ(w_max / d̄)` where `d̄` is the average degree — large enough
    /// that a bucket's short-edge phases do real work, small enough that
    /// Bellman-Ford-style re-relaxation stays bounded. With the Graph 500
    /// parameters (w_max = 255, d̄ = 32) this lands at 16, inside the
    /// paper's empirically best 10–50 band.
    pub fn auto_delta(w_max: u32, avg_degree: f64) -> u32 {
        ((2.0 * w_max as f64 / avg_degree.max(1.0)).round() as u32).max(2)
    }

    // Builder-style tweaks -------------------------------------------------

    /// Select the stepping policy (see [`SteppingPolicyKind`]).
    pub fn with_policy(mut self, p: SteppingPolicyKind) -> Self {
        if let SteppingPolicyKind::Rho(r) | SteppingPolicyKind::Radius(r) = p {
            assert!(r >= 1, "ρ must be at least 1");
        }
        self.policy = p;
        self
    }

    /// Toggle the inner/outer-short refinement (§III-A).
    pub fn with_ios(mut self, ios: bool) -> Self {
        self.ios = ios;
        self
    }

    /// Select how each long phase chooses between push and pull (§III-C).
    pub fn with_direction(mut self, d: DirectionPolicy) -> Self {
        self.direction = d;
        self
    }

    /// Set the Bellman-Ford switch threshold τ (fraction of vertices
    /// settled, §III-D); `None` disables hybridization.
    pub fn with_hybrid(mut self, tau: Option<f64>) -> Self {
        if let Some(t) = tau {
            assert!((0.0..=1.0).contains(&t), "τ must lie in [0, 1]");
        }
        self.hybrid_tau = tau;
        self
    }

    /// Select the intra-node thread load balancing mode (§III-E).
    pub fn with_intra_balance(mut self, b: IntraBalance) -> Self {
        self.intra_balance = b;
        self
    }

    /// Select how pull-request volume is estimated for the §III-C decision.
    pub fn with_pull_estimator(mut self, e: PullEstimator) -> Self {
        self.pull_estimator = e;
        self
    }

    /// Toggle superstep buffer pooling (on by default). Turning it off
    /// reinstates fresh per-superstep allocations without changing any
    /// message, distance or statistic — the differential axis used by the
    /// pooled-vs-fresh proptest and `perf_baseline`.
    pub fn with_pooled_buffers(mut self, pooled: bool) -> Self {
        self.pooled_buffers = pooled;
        self
    }

    /// Toggle the flat bucket/frontier layout (on by default). Turning it
    /// off reinstates the legacy `BTreeMap` bucket structure without
    /// changing any message, distance or statistic — the differential axis
    /// used by the flat-vs-legacy proptests.
    pub fn with_flat_state(mut self, flat: bool) -> Self {
        self.flat_state = flat;
        self
    }

    /// Toggle sender-side relaxation coalescing (on by default). Turning it
    /// off sends every produced relaxation verbatim — the differential axis
    /// used by the coalescing proptests. Distances are identical either
    /// way; only message counts differ.
    pub fn with_coalescing(mut self, coalescing: bool) -> Self {
        self.coalescing = coalescing;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_finite() {
        let d = DeltaParam::Finite(5);
        assert_eq!(d.bucket_of(0), 0);
        assert_eq!(d.bucket_of(4), 0);
        assert_eq!(d.bucket_of(5), 1);
        assert_eq!(d.bucket_end(0), 4);
        assert_eq!(d.bucket_end(2), 14);
        assert_eq!(d.short_bound(), 5);
    }

    #[test]
    fn bucket_math_infinite() {
        let d = DeltaParam::Infinite;
        assert_eq!(d.bucket_of(0), 0);
        assert_eq!(d.bucket_of(u64::MAX - 2), 0);
        assert!(d.bucket_end(0) > 1u64 << 60);
    }

    #[test]
    fn bucket_of_reserves_the_epoch_sentinel() {
        // Δ = 1 with a maximal finite distance must not produce the
        // `u64::MAX` index the epoch-selection collective uses as its "no
        // bucket left" sentinel.
        let d = DeltaParam::Finite(1);
        assert_eq!(d.bucket_of(u64::MAX - 1), u64::MAX - 1);
        // And bucket_end must not overflow for indices near the cap.
        assert_eq!(d.bucket_end(u64::MAX - 1), u64::MAX - 1);
        let d2 = DeltaParam::Finite(2);
        assert_eq!(d2.bucket_of(u64::MAX - 1), (u64::MAX - 1) / 2);
        assert_eq!(d2.bucket_end((u64::MAX - 1) / 2), u64::MAX - 1);
        assert_eq!(d2.bucket_end(u64::MAX - 1), u64::MAX - 1);
    }

    #[test]
    #[should_panic(expected = "INF distance")]
    #[cfg(debug_assertions)]
    fn bucket_of_rejects_inf() {
        let _ = DeltaParam::Finite(1).bucket_of(u64::MAX);
    }

    #[test]
    fn policy_presets_and_builder() {
        assert_eq!(SsspConfig::del(25).policy, SteppingPolicyKind::Delta);
        let rho = SsspConfig::rho(64);
        assert_eq!(rho.policy, SteppingPolicyKind::Rho(64));
        assert!(rho.ios);
        let rad = SsspConfig::radius(8);
        assert_eq!(rad.policy, SteppingPolicyKind::Radius(8));
        let cfg = SsspConfig::del(5).with_policy(SteppingPolicyKind::Rho(3));
        assert_eq!(cfg.policy, SteppingPolicyKind::Rho(3));
    }

    #[test]
    #[should_panic(expected = "ρ must be at least 1")]
    fn zero_rho_rejected() {
        let _ = SsspConfig::rho(0);
    }

    #[test]
    fn presets_compose() {
        let del = SsspConfig::del(25);
        assert!(!del.ios && del.hybrid_tau.is_none());
        let prune = SsspConfig::prune(25);
        assert!(prune.ios && prune.direction == DirectionPolicy::Heuristic);
        assert!(prune.hybrid_tau.is_none());
        let opt = SsspConfig::opt(25);
        assert_eq!(opt.hybrid_tau, Some(0.4));
        assert_eq!(opt.intra_balance, IntraBalance::Off);
        let lb = SsspConfig::lb_opt(25);
        assert_eq!(lb.intra_balance, IntraBalance::Auto);
    }

    #[test]
    fn dijkstra_and_bf_are_the_extremes() {
        assert_eq!(SsspConfig::dijkstra().delta, DeltaParam::Finite(1));
        assert_eq!(SsspConfig::bellman_ford().delta, DeltaParam::Infinite);
    }

    #[test]
    #[should_panic]
    fn invalid_tau_rejected() {
        let _ = SsspConfig::opt(10).with_hybrid(Some(1.5));
    }

    #[test]
    fn pooled_buffers_default_on_and_toggleable() {
        assert!(SsspConfig::del(5).pooled_buffers);
        assert!(SsspConfig::opt(5).pooled_buffers);
        assert!(!SsspConfig::opt(5).with_pooled_buffers(false).pooled_buffers);
    }

    #[test]
    fn flat_state_default_on_and_toggleable() {
        assert!(SsspConfig::del(5).flat_state);
        assert!(SsspConfig::rho(64).flat_state);
        assert!(!SsspConfig::opt(5).with_flat_state(false).flat_state);
    }

    #[test]
    fn coalescing_default_on_and_toggleable() {
        assert!(SsspConfig::del(5).coalescing);
        assert!(SsspConfig::opt(5).coalescing);
        assert!(!SsspConfig::opt(5).with_coalescing(false).coalescing);
    }

    #[test]
    fn auto_delta_lands_in_the_papers_band() {
        // Graph 500 parameters: w_max = 255, average degree 32.
        let d = SsspConfig::auto_delta(255, 32.0);
        assert!((10..=50).contains(&d), "auto Δ = {d}");
        // Degenerate inputs stay sane.
        assert!(SsspConfig::auto_delta(1, 0.0) >= 2);
    }
}
