//! Distributed direction-optimizing BFS on the same simulated machine.
//!
//! The paper frames its SSSP results against Blue Gene/Q BFS numbers
//! (Fig. 1: SSSP lands within 2–5× of same-machine BFS) and borrows BFS's
//! direction-optimization idea [Beamer et al., SC'12] for its pruning
//! heuristic. This module provides that comparison point: a
//! level-synchronous BFS over a [`DistGraph`], switching between
//!
//! * **top-down** — frontier owners push visit messages along all incident
//!   edges, and
//! * **bottom-up** — every rank receives the frontier bitmap (allgather)
//!   and scans its own unvisited vertices for a frontier neighbor,
//!
//! using Beamer's edge-count heuristic. Traffic and simulated time are
//! accounted with the same [`MachineModel`] as the SSSP engine, so
//! BFS-vs-SSSP GTEPS ratios are directly comparable.

use rayon::prelude::*;

use sssp_comm::collective::{allreduce_any, allreduce_sum};
use sssp_comm::cost::{MachineModel, TimeClass, TimeLedger};
use sssp_comm::exchange::{exchange_with, Outbox};
use sssp_comm::stats::CommStats;
use sssp_dist::DistGraph;
use sssp_graph::VertexId;

/// Unvisited marker in the depth array.
pub const UNVISITED: u32 = u32::MAX;

/// Which direction a BFS level ran in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BfsDirection {
    /// Frontier owners push to neighbors.
    TopDown,
    /// Unvisited vertices probe the frontier (direction-optimized).
    BottomUp,
}

/// Per-level record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BfsLevelRecord {
    /// BFS depth of this level.
    pub level: u32,
    /// Traversal direction chosen for this level.
    pub direction: BfsDirection,
    /// Number of frontier vertices entering the level.
    pub frontier_size: u64,
    /// Edges examined during the level.
    pub edges_examined: u64,
}

/// BFS run statistics.
#[derive(Debug, Clone, Default)]
pub struct BfsStats {
    /// Per-level records, in depth order.
    pub levels: Vec<BfsLevelRecord>,
    /// Number of vertices reached.
    pub visited: u64,
    /// Edges examined across all levels.
    pub edges_examined_total: u64,
    /// Message traffic ledger.
    pub comm: CommStats,
    /// Simulated time ledger.
    pub ledger: TimeLedger,
}

impl BfsStats {
    /// Traversal rate in GTEPS given the graph’s directed edge count.
    pub fn gteps(&self, m_edges: u64) -> f64 {
        sssp_comm::cost::teps(m_edges, self.ledger.total_s()) / 1e9
    }
}

/// BFS output: hop distance per global vertex (`u32::MAX` = unreachable).
#[derive(Debug, Clone)]
pub struct BfsOutput {
    /// BFS depth per vertex (`u32::MAX` = unreached).
    pub depth: Vec<u32>,
    /// Full instrumentation record.
    pub stats: BfsStats,
}

/// Beamer's switching parameters: go bottom-up when the frontier's edge
/// count exceeds `m / ALPHA`; return to top-down when the frontier shrinks
/// below `n / BETA`.
const ALPHA: u64 = 14;
const BETA: u64 = 24;

/// Run a direction-optimizing BFS from `root`.
///
/// # Examples
///
/// ```
/// use sssp_core::bfs::run_bfs;
/// use sssp_comm::cost::MachineModel;
/// use sssp_dist::DistGraph;
/// use sssp_graph::{gen, CsrBuilder};
///
/// let csr = CsrBuilder::new().build(&gen::star(6, 9)); // weights ignored
/// let dg = DistGraph::build(&csr, 2, 2);
/// let out = run_bfs(&dg, 0, &MachineModel::bgq_like());
/// assert_eq!(out.depth, vec![0, 1, 1, 1, 1, 1]);
/// ```
pub fn run_bfs(dg: &DistGraph, root: VertexId, model: &MachineModel) -> BfsOutput {
    let p = dg.num_ranks();
    let n = dg.num_vertices();
    let mut comm = CommStats::new();
    let mut ledger = TimeLedger::new();
    let mut stats = BfsStats::default();

    let mut depth: Vec<Vec<u32>> = (0..p)
        .map(|r| vec![UNVISITED; dg.part.local_count(r)])
        .collect();
    let mut frontier: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();

    if n == 0 {
        return finishup(dg, depth, stats, comm, ledger);
    }
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let ro = dg.part.owner(root);
    let rl = dg.part.to_local(root) as u32;
    depth[ro][rl as usize] = 0;
    frontier[ro].push(rl);

    let mut level = 0u32;
    loop {
        let any: Vec<bool> = frontier.iter().map(|f| !f.is_empty()).collect();
        let cont = allreduce_any(&any, &mut comm);
        ledger.charge_collective(model, TimeClass::Bucket, p);
        if !cont {
            break;
        }

        // Direction decision: frontier edge volume vs thresholds.
        let fe: Vec<u64> = frontier
            .iter()
            .enumerate()
            .map(|(r, f)| {
                f.iter()
                    .map(|&v| dg.locals[r].degree(v as usize) as u64)
                    .sum()
            })
            .collect();
        let frontier_edges = allreduce_sum(&fe, &mut comm);
        let fs: Vec<u64> = frontier.iter().map(|f| f.len() as u64).collect();
        let frontier_size = allreduce_sum(&fs, &mut comm);
        ledger.charge_collective(model, TimeClass::Bucket, p);
        ledger.charge_collective(model, TimeClass::Bucket, p);
        let bottom_up = frontier_edges > dg.m_directed / ALPHA
            || (level > 0 && frontier_size > n as u64 / BETA);

        let (next, examined) = if bottom_up {
            bottom_up_level(
                dg,
                &mut depth,
                &frontier,
                level,
                model,
                &mut comm,
                &mut ledger,
            )
        } else {
            top_down_level(
                dg,
                &mut depth,
                &frontier,
                level,
                model,
                &mut comm,
                &mut ledger,
            )
        };
        stats.levels.push(BfsLevelRecord {
            level,
            direction: if bottom_up {
                BfsDirection::BottomUp
            } else {
                BfsDirection::TopDown
            },
            frontier_size,
            edges_examined: examined,
        });
        stats.edges_examined_total += examined;
        frontier = next;
        level += 1;
    }

    finishup(dg, depth, stats, comm, ledger)
}

fn finishup(
    dg: &DistGraph,
    depth: Vec<Vec<u32>>,
    mut stats: BfsStats,
    comm: CommStats,
    ledger: TimeLedger,
) -> BfsOutput {
    let mut global = vec![UNVISITED; dg.num_vertices()];
    for (r, d) in depth.iter().enumerate() {
        for (l, &x) in d.iter().enumerate() {
            global[dg.part.to_global(r, l) as usize] = x;
        }
    }
    stats.visited = global.iter().filter(|&&d| d != UNVISITED).count() as u64;
    stats.comm = comm;
    stats.ledger = ledger;
    BfsOutput {
        depth: global,
        stats,
    }
}

/// Visit message: mark `target` (local on destination) at depth `level+1`.
#[derive(Debug, Clone, Copy)]
struct VisitMsg {
    target: u32,
}
const VISIT_BYTES: usize = 8;

fn top_down_level(
    dg: &DistGraph,
    depth: &mut [Vec<u32>],
    frontier: &[Vec<u32>],
    level: u32,
    model: &MachineModel,
    comm: &mut CommStats,
    ledger: &mut TimeLedger,
) -> (Vec<Vec<u32>>, u64) {
    let p = dg.num_ranks();
    let results: Vec<(Outbox<VisitMsg>, u64)> = (0..p)
        .into_par_iter()
        .map(|r| {
            let lg = &dg.locals[r];
            let mut ob = Outbox::new(p);
            let mut examined = 0u64;
            for &u in &frontier[r] {
                let (ts, _) = lg.row(u as usize);
                examined += ts.len() as u64;
                for &v in ts {
                    ob.send(
                        dg.part.owner(v),
                        VisitMsg {
                            target: dg.part.to_local(v) as u32,
                        },
                    );
                }
            }
            (ob, examined)
        })
        .collect();
    let (obs, counts): (Vec<_>, Vec<u64>) = results.into_iter().unzip();
    let examined: u64 = counts.iter().sum();
    let (inboxes, step) = exchange_with(obs, VISIT_BYTES, model.packet.as_ref());

    let next: Vec<Vec<u32>> = depth
        .par_iter_mut()
        .zip(inboxes.into_par_iter())
        .map(|(d, inbox)| {
            let mut nf = Vec::new();
            for m in inbox {
                let t = m.target as usize;
                if d[t] == UNVISITED {
                    d[t] = level + 1;
                    nf.push(m.target);
                }
            }
            nf
        })
        .collect();

    let threads = dg.threads_per_rank.max(1) as u64;
    ledger.charge_superstep(
        model,
        TimeClass::Relax,
        examined / (dg.num_ranks() as u64 * threads).max(1) + 1,
        step.max_rank_send_bytes.max(step.max_rank_recv_bytes),
    );
    comm.record(step);
    (next, examined)
}

fn bottom_up_level(
    dg: &DistGraph,
    depth: &mut [Vec<u32>],
    frontier: &[Vec<u32>],
    level: u32,
    model: &MachineModel,
    comm: &mut CommStats,
    ledger: &mut TimeLedger,
) -> (Vec<Vec<u32>>, u64) {
    let p = dg.num_ranks();
    let n = dg.num_vertices();

    // Allgather the frontier as a global bitmap (n bits per rank on the
    // wire — the bottom-up direction's communication cost).
    let mut bitmap = vec![false; n];
    for (r, f) in frontier.iter().enumerate() {
        for &v in f {
            bitmap[dg.part.to_global(r, v as usize) as usize] = true;
        }
    }
    comm.collectives += 1;
    ledger.charge_collective(model, TimeClass::Relax, p);
    ledger.charge_superstep(model, TimeClass::Relax, 0, (n as u64 / 8 + 1) * p as u64);

    let bitmap = &bitmap;
    let results: Vec<(Vec<u32>, u64)> = depth
        .par_iter_mut()
        .enumerate()
        .map(|(r, d)| {
            let lg = &dg.locals[r];
            let mut nf = Vec::new();
            let mut examined = 0u64;
            for (v, dv) in d.iter_mut().enumerate() {
                if *dv != UNVISITED {
                    continue;
                }
                let (ts, _) = lg.row(v);
                for &u in ts {
                    examined += 1;
                    if bitmap[u as usize] {
                        *dv = level + 1;
                        nf.push(v as u32);
                        break; // early exit: one frontier parent suffices
                    }
                }
            }
            (nf, examined)
        })
        .collect();

    let mut next = Vec::with_capacity(p);
    let mut examined = 0u64;
    for (nf, e) in results {
        next.push(nf);
        examined += e;
    }
    let threads = dg.threads_per_rank.max(1) as u64;
    ledger.charge_superstep(
        model,
        TimeClass::Relax,
        examined / (p as u64 * threads).max(1) + 1,
        0,
    );
    (next, examined)
}

/// Sequential reference BFS (hop distances).
pub fn seq_bfs(g: &sssp_graph::Csr, root: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((root as usize) < n);
    let mut depth = vec![UNVISITED; n];
    let mut queue = std::collections::VecDeque::new();
    depth[root as usize] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        let du = depth[u as usize];
        for (v, _) in g.row(u) {
            if depth[v as usize] == UNVISITED {
                depth[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssp_graph::{gen, CsrBuilder};

    fn model() -> MachineModel {
        MachineModel::bgq_like()
    }

    #[test]
    fn bfs_on_path() {
        let g = CsrBuilder::new().build(&gen::path(6, 9));
        let dg = DistGraph::build(&g, 3, 2);
        let out = run_bfs(&dg, 0, &model());
        assert_eq!(out.depth, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_matches_sequential_on_random_graphs() {
        for seed in 0..5 {
            let g = CsrBuilder::new().build(&gen::uniform(200, 1500, 20, seed));
            let expect = seq_bfs(&g, 0);
            for p in [1, 4, 7] {
                let dg = DistGraph::build(&g, p, 2);
                let out = run_bfs(&dg, 0, &model());
                assert_eq!(out.depth, expect, "seed {seed}, p {p}");
            }
        }
    }

    #[test]
    fn bfs_switches_to_bottom_up_on_dense_frontier() {
        use sssp_graph::rmat::{RmatGenerator, RmatParams};
        let el = RmatGenerator::new(RmatParams::RMAT1, 11, 16)
            .seed(3)
            .generate_weighted(255);
        let g = CsrBuilder::new().build(&el);
        let dg = DistGraph::build(&g, 4, 2);
        let root = g.vertices().find(|&v| g.degree(v) > 0).unwrap();
        let out = run_bfs(&dg, root, &model());
        assert_eq!(out.depth, seq_bfs(&g, root));
        assert!(
            out.stats
                .levels
                .iter()
                .any(|l| l.direction == BfsDirection::BottomUp),
            "scale-free graph should trigger bottom-up levels"
        );
        assert!(
            out.stats
                .levels
                .iter()
                .any(|l| l.direction == BfsDirection::TopDown),
            "first level should be top-down"
        );
    }

    #[test]
    fn direction_optimization_examines_fewer_edges() {
        use sssp_graph::rmat::{RmatGenerator, RmatParams};
        let el = RmatGenerator::new(RmatParams::RMAT1, 11, 16)
            .seed(5)
            .generate_weighted(255);
        let g = CsrBuilder::new().build(&el);
        let dg = DistGraph::build(&g, 4, 2);
        let root = g.vertices().find(|&v| g.degree(v) > 0).unwrap();
        let out = run_bfs(&dg, root, &model());
        // A pure top-down BFS examines every edge slot of the reachable
        // component; direction optimization must beat that.
        assert!(out.stats.edges_examined_total < g.num_directed_edges() as u64);
    }

    #[test]
    fn unreachable_stay_unvisited() {
        let mut el = gen::path(4, 1);
        el.n = 7;
        let g = CsrBuilder::new().build(&el);
        let dg = DistGraph::build(&g, 2, 1);
        let out = run_bfs(&dg, 0, &model());
        assert_eq!(out.stats.visited, 4);
        for v in 4..7 {
            assert_eq!(out.depth[v], UNVISITED);
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CsrBuilder::new().build(&sssp_graph::EdgeList::new(0));
        let dg = DistGraph::build(&g, 2, 1);
        let out = run_bfs(&dg, 0, &model());
        let _ = out;
    }
}
