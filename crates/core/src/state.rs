//! Per-rank mutable state of the distributed Δ-stepping engine.
//!
//! Each rank owns the tentative distances and bucket structure of its local
//! vertices. Buckets use the classic lazy-deletion representation: member
//! containers plus an authoritative `bucket_of` array; entries whose
//! `bucket_of` no longer matches are skipped at iteration time. A vertex
//! only ever moves to a strictly lower bucket, so it appears at most once
//! in any bucket container. Exact per-bucket counts are kept alongside for
//! the next-bucket collective.
//!
//! The member layout is [`FlatBuckets`]: a lazy cyclic ring of
//! [`FLAT_LANES`] flat `Vec<u32>` lanes indexed by `bucket % FLAT_LANES`,
//! with an overflow spill list for buckets beyond the ring. The engine
//! calls [`RankState::advance_frontier`] once per epoch; lanes the
//! frontier passed are recycled in O(passed) and spill entries whose
//! bucket entered the ring migrate in. All hot-path operations are
//! array indexing instead of `BTreeMap` node chasing. (The historical
//! `BTreeMap<u64, Vec<u32>>` layout was retired after its differential
//! soak release — `SsspConfig::flat_state = false` now fails loudly; see
//! DESIGN.md §6h.)
//!
//! State is reusable across runs: the serving layer keeps one
//! [`RankState`] per rank resident and calls [`RankState::reset`] between
//! queries, which restores the all-unreached initial state while keeping
//! every allocation (lanes, spill, bitsets, distance arrays) warm.
//!
//! The `changed` / `active` frontier sets are epoch-stamped bitsets
//! ([`StampBitset`]): O(1) clear by stamp bump, duplicate-free insertion by
//! construction, and word-level iteration in the kernels.

use std::collections::BTreeMap;

use sssp_dist::ThreadLoads;

use crate::policy::{SteppingPolicy, NO_PROPOSAL};

/// "Infinite" tentative distance.
pub const INF: u64 = u64::MAX;

/// Bucket index of unreached vertices (the paper's B∞).
pub const INF_BUCKET: u64 = u64::MAX;

/// Width of the flat bucket ring: how many consecutive bucket indices the
/// lane array covers before pushes overflow into the spill list. Sized so
/// Δ-stepping (small bucket indices) and Dial-granularity policies with
/// Graph 500-scale weights (≤ 255) stay in the ring almost always.
pub const FLAT_LANES: u64 = 512;

/// An epoch-stamped bitset over local vertex ids: clearing is an O(1)
/// stamp bump (a word is live only when its stamp matches the current
/// one), insertion is idempotent, and the kernels iterate members a word
/// at a time. Replaces the `Vec<u32>` + stamp-array frontier sets.
#[derive(Debug)]
pub struct StampBitset {
    words: Vec<u64>,
    word_stamp: Vec<u32>,
    stamp: u32,
    len: usize,
}

impl StampBitset {
    /// Empty set over a universe of `n` vertex ids.
    pub fn new(n: usize) -> Self {
        let nw = n.div_ceil(64);
        StampBitset {
            words: vec![0; nw],
            word_stamp: vec![0; nw],
            stamp: 1,
            len: 0,
        }
    }

    /// Remove every member. O(1): bumps the epoch stamp instead of
    /// touching the words (with a full reset on the rare stamp wrap).
    pub fn clear(&mut self) {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp wrapped: reset markers to keep correctness.
            self.word_stamp.fill(0);
            self.stamp = 1;
        }
        self.len = 0;
    }

    /// Insert `v`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, v: u32) -> bool {
        let wi = (v >> 6) as usize;
        let bit = 1u64 << (v & 63);
        if self.word_stamp[wi] != self.stamp {
            self.word_stamp[wi] = self.stamp;
            self.words[wi] = 0;
        }
        let newly = self.words[wi] & bit == 0;
        if newly {
            self.words[wi] |= bit;
            self.len += 1;
        }
        newly
    }

    /// Whether `v` is a member.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        let wi = (v >> 6) as usize;
        self.word_stamp[wi] == self.stamp && self.words[wi] & (1u64 << (v & 63)) != 0
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of 64-bit words covering the universe.
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Word `wi` of the member mask (0 when the word is not live in the
    /// current epoch) — the kernels' word-level iteration primitive.
    #[inline]
    pub fn word(&self, wi: usize) -> u64 {
        if self.word_stamp[wi] == self.stamp {
            self.words[wi]
        } else {
            0
        }
    }

    /// Overwrite word `wi` with `w`, adjusting the member count. Used for
    /// whole-word copies between frontier sets.
    #[inline]
    pub fn set_word(&mut self, wi: usize, w: u64) {
        let old = if self.word_stamp[wi] == self.stamp {
            self.words[wi]
        } else {
            0
        };
        self.len = self.len - old.count_ones() as usize + w.count_ones() as usize;
        self.words[wi] = w;
        self.word_stamp[wi] = self.stamp;
    }

    /// Members in ascending vertex-id order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.words.len()).flat_map(move |wi| {
            let mut w = self.word(wi);
            let base = sssp_graph::checked_u32(wi * 64);
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(base + b)
                }
            })
        })
    }

    /// Members collected into a vector (ascending order) — test helper.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

impl Default for StampBitset {
    fn default() -> Self {
        StampBitset::new(0)
    }
}

/// The lazy cyclic flat bucket queue: a ring of [`FLAT_LANES`] member
/// lanes covering buckets `[base, base + FLAT_LANES)`, exact live counts
/// per in-ring bucket, and a spill list for pushes beyond the ring.
///
/// Invariants (all relative to the monotone epoch sequence the engine
/// drives through [`RankState::advance_frontier`]):
///
/// * lane `b % FLAT_LANES` holds only entries pushed for the unique
///   in-ring bucket `b` (plus lazy-deletion stale entries for that `b`);
/// * every spill entry's bucket is `≥ base + FLAT_LANES`;
/// * counts track *live* vertices (`bucket_of` matches) exactly;
/// * queries below `base` are answered as empty — the engine only ever
///   queries at or above the current epoch's bucket.
#[derive(Debug)]
struct FlatBuckets {
    /// First bucket the ring covers (the current epoch's bucket).
    base: u64,
    lanes: Vec<Vec<u32>>,
    lane_counts: Vec<u64>,
    /// Overflow entries `(vertex, bucket)` for buckets beyond the ring.
    spill: Vec<(u32, u64)>,
    /// Exact live counts of the spill buckets.
    spill_counts: BTreeMap<u64, u64>,
}

impl FlatBuckets {
    fn new() -> Self {
        FlatBuckets {
            base: 0,
            lanes: (0..FLAT_LANES).map(|_| Vec::new()).collect(),
            lane_counts: vec![0; FLAT_LANES as usize],
            spill: Vec::new(),
            spill_counts: BTreeMap::new(),
        }
    }

    /// One past the last bucket the ring covers (saturating near the
    /// bucket-index cap).
    #[inline]
    fn ring_end(&self) -> u64 {
        self.base.saturating_add(FLAT_LANES)
    }

    /// Restore the empty initial state (base 0, no members anywhere) while
    /// keeping lane and spill allocations warm. Without the base rewind a
    /// reused ring would silently answer every query below the previous
    /// run's final bucket as empty — including the new query's bucket 0
    /// roots — and the engine would terminate immediately with INF
    /// distances.
    fn reset(&mut self) {
        self.base = 0;
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.lane_counts.fill(0);
        self.spill.clear();
        self.spill_counts.clear();
    }

    #[inline]
    fn slot(b: u64) -> usize {
        (b % FLAT_LANES) as usize
    }

    #[inline]
    fn push(&mut self, v: u32, b: u64) {
        debug_assert!(
            b >= self.base,
            "push below the ring base ({b} < {})",
            self.base
        );
        if b < self.ring_end() {
            self.lanes[Self::slot(b)].push(v);
            self.lane_counts[Self::slot(b)] += 1;
        } else {
            self.spill.push((v, b));
            *self.spill_counts.entry(b).or_insert(0) += 1;
        }
    }

    #[inline]
    fn dec(&mut self, b: u64) {
        if b < self.base {
            // A live vertex below the ring base would be a settled vertex
            // improving — impossible under the epoch invariant; its count
            // was recycled with the lane.
            debug_assert!(false, "count decrement below the ring base");
        } else if b < self.ring_end() {
            let c = &mut self.lane_counts[Self::slot(b)];
            // sssp-lint: allow(no-panic-hot-path): count exists whenever
            // bucket_of is finite; a miss means corrupted bucket state and
            // continuing would return wrong distances.
            *c = c.checked_sub(1).expect("bucket count missing");
        } else {
            // sssp-lint: allow(no-panic-hot-path): same contract as above.
            let c = self.spill_counts.get_mut(&b).expect("bucket count missing");
            *c -= 1;
            if *c == 0 {
                self.spill_counts.remove(&b);
            }
        }
    }

    fn count(&self, b: u64) -> u64 {
        if b < self.base {
            0
        } else if b < self.ring_end() {
            self.lane_counts[Self::slot(b)]
        } else {
            self.spill_counts.get(&b).copied().unwrap_or(0)
        }
    }

    fn window_count(&self, lo: u64, hi: u64) -> u64 {
        let mut sum = 0u64;
        let mut b = lo.max(self.base);
        let ring_hi = hi.min(self.ring_end() - 1);
        while b <= ring_hi {
            sum += self.lane_counts[Self::slot(b)];
            b += 1;
        }
        if hi >= self.ring_end() {
            sum += self
                .spill_counts
                .range(self.ring_end()..=hi)
                .map(|(_, &c)| c)
                .sum::<u64>();
        }
        sum
    }

    fn window_scan_len(&self, lo: u64, hi: u64) -> usize {
        let mut sum = 0usize;
        let mut b = lo.max(self.base);
        let ring_hi = hi.min(self.ring_end() - 1);
        while b <= ring_hi {
            sum += self.lanes[Self::slot(b)].len();
            b += 1;
        }
        if hi >= self.ring_end() {
            // A window reaching past the ring scans the whole spill list.
            sum += self.spill.len();
        }
        sum
    }

    fn bucket_scan_len(&self, k: u64) -> usize {
        if k < self.base {
            0
        } else if k < self.ring_end() {
            self.lanes[Self::slot(k)].len()
        } else {
            self.spill.iter().filter(|&&(_, b)| b == k).count()
        }
    }

    fn next_nonempty_from(&self, start: u64) -> Option<u64> {
        let end = self.ring_end();
        let mut b = start.max(self.base);
        while b < end {
            if self.lane_counts[Self::slot(b)] > 0 {
                return Some(b);
            }
            b += 1;
        }
        self.spill_counts
            .range(start.max(end)..)
            .find(|&(_, &c)| c > 0)
            .map(|(&b, _)| b)
    }

    fn prefix_window_end(&self, k: u64, cap: u64) -> u64 {
        let mut cum = 0u64;
        let mut last = k;
        let end = self.ring_end();
        let mut b = k.max(self.base);
        while b < end {
            let c = self.lane_counts[Self::slot(b)];
            if c > 0 {
                cum += c;
                if cum > cap {
                    return if b == k { k } else { last };
                }
                last = b;
            }
            b += 1;
        }
        for (&b, &c) in self.spill_counts.range(k.max(end)..) {
            cum += c;
            if cum > cap {
                return if b == k { k } else { last };
            }
            last = b;
        }
        NO_PROPOSAL
    }

    fn count_after(&self, k: u64) -> u64 {
        let start = k.saturating_add(1);
        let end = self.ring_end();
        let mut sum = 0u64;
        let mut b = start.max(self.base);
        while b < end {
            sum += self.lane_counts[Self::slot(b)];
            b += 1;
        }
        sum + self
            .spill_counts
            .range(start.max(end)..)
            .map(|(_, &c)| c)
            .sum::<u64>()
    }

    /// Slide the ring base up to bucket `k` (the new epoch's bucket):
    /// recycle the lanes the frontier passed, then migrate spill entries
    /// whose bucket entered the ring (dropping lazily deleted ones).
    fn advance(&mut self, k: u64, bucket_of: &[u64]) {
        if k <= self.base {
            return;
        }
        if k.saturating_sub(self.base) >= FLAT_LANES {
            for lane in &mut self.lanes {
                lane.clear();
            }
            self.lane_counts.fill(0);
        } else {
            let mut b = self.base;
            while b < k {
                self.lanes[Self::slot(b)].clear();
                self.lane_counts[Self::slot(b)] = 0;
                b += 1;
            }
        }
        self.base = k;
        let end = self.ring_end();
        if self.spill.is_empty() && self.spill_counts.is_empty() {
            return;
        }
        let (lane_counts, lanes) = (&mut self.lane_counts, &mut self.lanes);
        self.spill_counts.retain(|&b, c| {
            if b < end {
                if b >= k {
                    lane_counts[Self::slot(b)] += *c;
                }
                false
            } else {
                true
            }
        });
        let mut i = 0;
        while i < self.spill.len() {
            let (v, b) = self.spill[i];
            if b < end {
                self.spill.swap_remove(i);
                // Migrate only live entries; stale (lazily deleted) and
                // already-passed ones are dropped here instead of being
                // rescanned every epoch.
                if b >= k && bucket_of[v as usize] == b {
                    lanes[Self::slot(b)].push(v);
                }
            } else {
                i += 1;
            }
        }
    }
}

/// State of one simulated rank.
#[derive(Debug)]
pub struct RankState {
    /// Rank id (for diagnostics).
    pub rank: usize,
    /// Tentative distance per local vertex.
    pub dist: Vec<u64>,
    /// Current bucket per local vertex ([`INF_BUCKET`] = unreached).
    pub bucket_of: Vec<u64>,
    store: FlatBuckets,
    /// Vertices whose distance changed in the current phase.
    pub changed: StampBitset,
    /// Active vertices for the next phase.
    pub active: StampBitset,
    /// Per-thread operation ledger for the current superstep.
    pub loads: ThreadLoads,
}

impl RankState {
    /// Fresh state for a rank owning `n_local` vertices, all unreached.
    pub fn new(rank: usize, n_local: usize, threads: usize) -> Self {
        RankState {
            rank,
            dist: vec![INF; n_local],
            bucket_of: vec![INF_BUCKET; n_local],
            store: FlatBuckets::new(),
            changed: StampBitset::new(n_local),
            active: StampBitset::new(n_local),
            loads: ThreadLoads::new(threads),
        }
    }

    /// Restore the all-unreached initial state while keeping every
    /// allocation warm — the serving layer's between-queries reset. This
    /// must undo *all* per-run state: distances and `bucket_of`, the
    /// bucket ring (including its base and the spill list — a stale base
    /// would answer the next query's bucket-0 pushes as empty), both
    /// frontier bitsets (stamp bump, so a stale stamp cannot leak a
    /// previous query's frontier into the next run), and the thread loads.
    pub fn reset(&mut self) {
        self.dist.fill(INF);
        self.bucket_of.fill(INF_BUCKET);
        self.store.reset();
        self.changed.clear();
        self.active.clear();
        self.loads.reset();
    }

    /// Number of vertices this rank owns.
    pub fn n_local(&self) -> usize {
        self.dist.len()
    }

    /// Place the root: distance 0, bucket 0.
    pub fn set_root(&mut self, local: u32) {
        self.dist[local as usize] = 0;
        self.bucket_of[local as usize] = 0;
        self.store.push(local, 0);
    }

    /// Begin a new phase: clear the changed set (an O(1) stamp bump).
    pub fn begin_phase(&mut self) {
        self.changed.clear();
    }

    /// Slide the flat bucket ring's base up to the new epoch's bucket
    /// `k`, recycling the lanes the frontier passed and migrating spill
    /// entries whose bucket entered the ring. The engines call this once
    /// per epoch, right after the epoch-selection collective; every later
    /// bucket query of the epoch is at or above `k`.
    pub fn advance_frontier(&mut self, k: u64) {
        self.store.advance(k, &self.bucket_of);
    }

    /// Apply `Relax`: `d(v) ← min(d(v), nd)`, moving buckets as required
    /// (Fig. 2 of the paper). Returns whether the distance decreased. The
    /// bucket the vertex lands in is the policy's to decide ([`DeltaParam`]
    /// for classic Δ-stepping).
    ///
    /// [`DeltaParam`]: crate::config::DeltaParam
    #[inline]
    pub fn relax<P: SteppingPolicy>(&mut self, local: u32, nd: u64, policy: &P) -> bool {
        let li = local as usize;
        if nd >= self.dist[li] {
            return false;
        }
        let old_b = self.bucket_of[li];
        let new_b = policy.bucket_of(nd);
        debug_assert!(
            new_b <= old_b,
            "bucket monotonicity violated: relax(local {local}, d = {nd}) would move \
             bucket {old_b} -> {new_b}"
        );
        self.dist[li] = nd;
        if new_b < old_b {
            if old_b != INF_BUCKET {
                self.store.dec(old_b);
            }
            self.store.push(local, new_b);
            self.bucket_of[li] = new_b;
        }
        self.changed.insert(local);
        true
    }

    /// Live members of bucket `k` (lazy deletion filtered).
    pub fn bucket_members(&self, k: u64) -> impl Iterator<Item = u32> + '_ {
        self.window_members(k, k)
    }

    /// Live members of every bucket in `[lo, hi]` (lazy deletion
    /// filtered). In-ring buckets come in bucket order; spill members (a
    /// window reaching past the ring) follow in no particular order —
    /// every consumer is order-independent (min/sum folds and the bitset
    /// active-set collector).
    pub fn window_members(&self, lo: u64, hi: u64) -> impl Iterator<Item = u32> + '_ {
        let bucket_of = &self.bucket_of;
        let fb = &self.store;
        let ring_lo = lo.max(fb.base);
        let ring_hi = hi.min(fb.ring_end() - 1);
        let spill_take = if hi >= fb.ring_end() { usize::MAX } else { 0 };
        (ring_lo..=ring_hi)
            .flat_map(move |b| {
                fb.lanes[FlatBuckets::slot(b)]
                    .iter()
                    .copied()
                    .filter(move |&v| bucket_of[v as usize] == b)
            })
            .chain(
                fb.spill
                    .iter()
                    .take(spill_take)
                    .filter(move |&&(v, b)| lo <= b && b <= hi && bucket_of[v as usize] == b)
                    .map(|&(v, _)| v),
            )
    }

    /// Raw (unfiltered) scan length over the bucket range `[lo, hi]` — the
    /// cost of collecting the window's members. On the flat layout a
    /// window reaching past the ring charges the whole spill list (that is
    /// what the collector scans).
    pub fn window_scan_len(&self, lo: u64, hi: u64) -> usize {
        self.store.window_scan_len(lo, hi)
    }

    /// Exact number of vertices currently in buckets `[lo, hi]`.
    pub fn window_count(&self, lo: u64, hi: u64) -> u64 {
        self.store.window_count(lo, hi)
    }

    /// ρ-stepping's per-rank window proposal: the largest bucket `H ≥ k`
    /// such that at most `cap` local vertices sit in buckets `[k, H]` —
    /// but at least `k` itself, since the globally selected bucket must be
    /// inside the window. Returns [`NO_PROPOSAL`] when even the whole
    /// suffix stays within the cap.
    pub fn prefix_window_end(&self, k: u64, cap: u64) -> u64 {
        self.store.prefix_window_end(k, cap)
    }

    /// Raw (unfiltered) length of bucket `k`'s member container — the scan
    /// cost of collecting the bucket's members.
    pub fn bucket_scan_len(&self, k: u64) -> usize {
        self.store.bucket_scan_len(k)
    }

    /// Exact number of vertices currently in bucket `k`.
    pub fn bucket_count(&self, k: u64) -> u64 {
        self.store.count(k)
    }

    /// Smallest non-empty bucket index `> k`, if any. Pass `None` to search
    /// from the beginning.
    pub fn next_nonempty_after(&self, k: Option<u64>) -> Option<u64> {
        let start = match k {
            Some(k) => k + 1,
            None => 0,
        };
        self.store.next_nonempty_from(start)
    }

    /// Number of unsettled vertices (bucket index > `k`), i.e. the scan
    /// extent of a pull phase for current bucket `k`.
    pub fn count_unsettled_after(&self, k: u64) -> u64 {
        let later = self.store.count_after(k);
        let infinite = self.bucket_of.iter().filter(|&&b| b == INF_BUCKET).count() as u64;
        later + infinite
    }

    /// Collect the live members of bucket `k` into `active` (all
    /// `collect_active_*` methods refill the bitset in place — an O(1)
    /// stamp-bump clear plus member insertion, no reallocation).
    pub fn collect_active_from_bucket(&mut self, k: u64) {
        self.collect_active_from_window(k, k);
    }

    /// Collect the live members of every bucket in `[lo, hi]` into
    /// `active`.
    pub fn collect_active_from_window(&mut self, lo: u64, hi: u64) {
        let mut active = std::mem::take(&mut self.active);
        active.clear();
        for v in self.window_members(lo, hi) {
            active.insert(v);
        }
        self.active = active;
    }

    /// Collect every unsettled finite vertex (the hybrid tail's initial
    /// active set) into `active`.
    pub fn collect_active_unsettled(&mut self, k: u64) {
        let n = sssp_graph::checked_u32(self.n_local());
        self.active.clear();
        let (bucket_of, active) = (&self.bucket_of, &mut self.active);
        for v in 0..n {
            let b = bucket_of[v as usize];
            if b > k && b != INF_BUCKET {
                active.insert(v);
            }
        }
    }

    /// Refill `active` with the changed vertices currently in bucket `k`
    /// (the next short phase's frontier).
    pub fn collect_active_changed_in_bucket(&mut self, k: u64) {
        self.collect_active_changed_in_window(k, k);
    }

    /// Refill `active` with the changed vertices currently in buckets
    /// `[lo, hi]` (the next short phase's frontier of a window epoch).
    pub fn collect_active_changed_in_window(&mut self, lo: u64, hi: u64) {
        self.active.clear();
        let (changed, bucket_of, active) = (&self.changed, &self.bucket_of, &mut self.active);
        for v in changed.iter() {
            let b = bucket_of[v as usize];
            if lo <= b && b <= hi {
                active.insert(v);
            }
        }
    }

    /// Refill `active` with every changed vertex (the Bellman-Ford tail's
    /// next frontier) — a whole-word copy of the changed bitset.
    pub fn collect_active_changed(&mut self) {
        self.active.clear();
        let (changed, active) = (&self.changed, &mut self.active);
        for wi in 0..changed.num_words() {
            let w = changed.word(wi);
            if w != 0 {
                active.set_word(wi, w);
            }
        }
    }

    /// Charge the receive-side processing of one message to the thread
    /// owning the target vertex. Receive work is O(1) per message, so it is
    /// never spread (spreading would hide exactly the per-thread imbalance
    /// the decision heuristic's cost model is supposed to see).
    #[inline]
    pub fn charge_recv(&mut self, target: u32) {
        self.loads.charge(target as usize, 1, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeltaParam;

    fn delta5() -> DeltaParam {
        DeltaParam::Finite(5)
    }

    /// Bucket-structure tests run on a fresh state and once more on a
    /// reset one: a reused state must be indistinguishable from fresh.
    fn both_lifecycles(f: impl Fn(RankState)) {
        f(RankState::new(0, 64, 1));
        let mut reused = RankState::new(0, 64, 1);
        reused.begin_phase();
        let d1 = DeltaParam::Finite(1);
        for v in 0..32 {
            reused.relax(v, u64::from(v) * 40 + 1, &d1);
        }
        reused.advance_frontier(FLAT_LANES + 7);
        reused.reset();
        f(reused);
    }

    #[test]
    fn window_helpers_cover_bucket_ranges() {
        both_lifecycles(|mut s| {
            s.begin_phase();
            s.relax(0, 3, &delta5()); // bucket 0
            s.relax(1, 7, &delta5()); // bucket 1
            s.relax(2, 12, &delta5()); // bucket 2
            s.relax(3, 13, &delta5()); // bucket 2
            assert_eq!(s.window_count(0, 1), 2);
            assert_eq!(s.window_count(1, 2), 3);
            assert_eq!(s.window_members(0, 2).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
            s.collect_active_from_window(1, 2);
            assert_eq!(s.active.to_vec(), vec![1, 2, 3]);
            s.collect_active_changed_in_window(2, 2);
            assert_eq!(s.active.to_vec(), vec![2, 3]);
            // A vertex that moved below the window drops out everywhere.
            s.relax(2, 1, &delta5());
            assert_eq!(s.window_members(2, 2).collect::<Vec<_>>(), vec![3]);
            assert_eq!(s.window_scan_len(2, 2), 2); // stale entry still scanned
            assert_eq!(s.window_count(2, 2), 1);
        });
    }

    #[test]
    fn prefix_window_end_respects_the_cap() {
        both_lifecycles(|mut s| {
            s.begin_phase();
            s.relax(0, 3, &delta5()); // bucket 0
            s.relax(1, 7, &delta5()); // bucket 1
            s.relax(2, 12, &delta5()); // bucket 2
            s.relax(3, 13, &delta5()); // bucket 2
                                       // cap 1: only bucket 0 fits.
            assert_eq!(s.prefix_window_end(0, 1), 0);
            // cap 2: buckets 0..=1 fit, bucket 2 would exceed.
            assert_eq!(s.prefix_window_end(0, 2), 1);
            // cap 4: everything fits — no bound.
            assert_eq!(s.prefix_window_end(0, 4), NO_PROPOSAL);
            // Even a cap the selected bucket alone exceeds proposes k itself.
            assert_eq!(s.prefix_window_end(2, 1), 2);
        });
    }

    #[test]
    fn root_goes_to_bucket_zero() {
        both_lifecycles(|mut s| {
            s.set_root(3);
            assert_eq!(s.dist[3], 0);
            assert_eq!(s.bucket_count(0), 1);
            assert_eq!(s.bucket_members(0).collect::<Vec<_>>(), vec![3]);
        });
    }

    #[test]
    fn relax_improves_and_moves_buckets() {
        both_lifecycles(|mut s| {
            s.begin_phase();
            assert!(s.relax(1, 12, &delta5())); // bucket 2
            assert_eq!(s.bucket_of[1], 2);
            assert!(s.relax(1, 3, &delta5())); // bucket 0
            assert_eq!(s.bucket_of[1], 0);
            assert_eq!(s.bucket_count(2), 0);
            assert_eq!(s.bucket_count(0), 1);
            assert!(!s.relax(1, 3, &delta5())); // equal: no change
            assert!(!s.relax(1, 7, &delta5())); // worse: no change
        });
    }

    #[test]
    fn changed_is_deduplicated() {
        let mut s = RankState::new(0, 4, 1);
        s.begin_phase();
        s.relax(2, 100, &delta5());
        s.relax(2, 50, &delta5());
        s.relax(2, 20, &delta5());
        assert_eq!(s.changed.to_vec(), vec![2]);
        assert_eq!(s.changed.len(), 1);
        s.begin_phase();
        assert!(s.changed.is_empty());
        s.relax(2, 10, &delta5());
        assert_eq!(s.changed.to_vec(), vec![2]);
    }

    #[test]
    fn lazy_deletion_filters_members() {
        both_lifecycles(|mut s| {
            s.begin_phase();
            s.relax(1, 12, &delta5()); // bucket 2
            s.relax(2, 13, &delta5()); // bucket 2
            s.relax(1, 2, &delta5()); // moves to bucket 0; stale entry remains in 2
            let members: Vec<u32> = s.bucket_members(2).collect();
            assert_eq!(members, vec![2]);
            assert_eq!(s.bucket_scan_len(2), 2); // stale entry still scanned
            assert_eq!(s.bucket_count(2), 1);
        });
    }

    #[test]
    fn next_nonempty_after_skips_empties() {
        both_lifecycles(|mut s| {
            s.begin_phase();
            s.relax(0, 3, &delta5()); // bucket 0
            s.relax(1, 26, &delta5()); // bucket 5
            assert_eq!(s.next_nonempty_after(None), Some(0));
            assert_eq!(s.next_nonempty_after(Some(0)), Some(5));
            assert_eq!(s.next_nonempty_after(Some(5)), None);
        });
    }

    #[test]
    fn unsettled_counts_include_infinite() {
        let mut s = RankState::new(0, 6, 1);
        s.begin_phase();
        s.relax(0, 3, &delta5()); // bucket 0
        s.relax(1, 26, &delta5()); // bucket 5
                                   // 4 INF vertices + 1 in bucket 5.
        assert_eq!(s.count_unsettled_after(0), 5);
        assert_eq!(s.count_unsettled_after(5), 4);
    }

    #[test]
    fn collect_active_unsettled_excludes_inf_and_settled() {
        let mut s = RankState::new(0, 6, 1);
        s.begin_phase();
        s.relax(0, 3, &delta5()); // settled after bucket 0
        s.relax(1, 26, &delta5());
        s.relax(2, 31, &delta5());
        s.collect_active_unsettled(0);
        assert_eq!(s.active.to_vec(), vec![1, 2]);
    }

    #[test]
    fn collect_active_refills_in_place() {
        // The bitset frontier never reallocates across refills: its word
        // array is sized once at construction and every collect is a
        // stamp-bump clear plus insertions.
        let mut s = RankState::new(0, 16, 2);
        s.begin_phase();
        for v in 0..8 {
            s.relax(v, 3, &delta5()); // all in bucket 0
        }
        s.collect_active_from_bucket(0);
        assert_eq!(s.active.len(), 8);
        let words = s.active.num_words();
        s.begin_phase();
        s.relax(9, 2, &delta5());
        s.collect_active_changed_in_bucket(0);
        assert_eq!(s.active.to_vec(), vec![9]);
        assert_eq!(s.active.num_words(), words);
        s.collect_active_changed();
        assert_eq!(s.active.to_vec(), vec![9]);
        assert_eq!(s.active.num_words(), words);
    }

    #[test]
    fn collect_active_changed_in_bucket_filters_moved_vertices() {
        let mut s = RankState::new(0, 8, 1);
        s.begin_phase();
        s.relax(1, 3, &delta5()); // bucket 0
        s.relax(2, 12, &delta5()); // bucket 2 — not in bucket 0
        s.collect_active_changed_in_bucket(0);
        assert_eq!(s.active.to_vec(), vec![1]);
    }

    #[test]
    fn charge_recv_lands_on_target_owner_thread() {
        let mut s = RankState::new(0, 8, 4);
        // Locals 0 and 4 are both owned by thread 0 (cyclic ownership).
        s.charge_recv(0);
        s.charge_recv(4);
        s.charge_recv(1);
        assert_eq!(s.loads.max(), 2);
        assert_eq!(s.loads.total(), 3);
    }

    #[test]
    fn infinite_delta_single_bucket() {
        let mut s = RankState::new(0, 4, 1);
        s.begin_phase();
        s.relax(0, 1_000_000, &DeltaParam::Infinite);
        s.relax(1, 5, &DeltaParam::Infinite);
        assert_eq!(s.bucket_of[0], 0);
        assert_eq!(s.bucket_of[1], 0);
        assert_eq!(s.bucket_count(0), 2);
    }

    #[test]
    fn spill_covers_buckets_beyond_the_ring() {
        // Dial granularity (Δ = 1): the bucket IS the distance, so a far
        // relax lands beyond the FLAT_LANES ring and must spill.
        let d1 = DeltaParam::Finite(1);
        let far = FLAT_LANES + 100;
        let mut s = RankState::new(0, 8, 1);
        s.begin_phase();
        s.relax(0, 2, &d1);
        s.relax(1, far, &d1);
        s.relax(2, far, &d1);
        assert_eq!(s.bucket_count(far), 2);
        assert_eq!(s.window_count(0, far), 3);
        assert_eq!(s.next_nonempty_after(Some(2)), Some(far));
        let mut members: Vec<u32> = s.bucket_members(far).collect();
        members.sort_unstable();
        assert_eq!(members, vec![1, 2]);
        // A spill entry going stale before migration is dropped by it.
        s.relax(2, 3, &d1);
        assert_eq!(s.bucket_count(far), 1);
        // Advance past the small buckets: the far bucket enters the ring.
        s.advance_frontier(far - 10);
        assert_eq!(s.bucket_count(far), 1);
        assert_eq!(s.bucket_scan_len(far), 1, "stale spill entry migrated");
        assert_eq!(s.bucket_members(far).collect::<Vec<_>>(), vec![1]);
        assert_eq!(s.next_nonempty_after(None), Some(far));
    }

    #[test]
    fn advance_recycles_passed_lanes() {
        let d1 = DeltaParam::Finite(1);
        let mut s = RankState::new(0, 8, 1);
        s.begin_phase();
        s.relax(0, 0, &d1);
        s.relax(1, 3, &d1);
        s.advance_frontier(3);
        // Settled bucket 0 was recycled; the epoch only queries ≥ 3.
        assert_eq!(s.bucket_count(3), 1);
        assert_eq!(s.next_nonempty_after(Some(2)), Some(3));
        // The recycled lane serves its ring successor (bucket 0 + lanes).
        s.relax(2, FLAT_LANES, &d1);
        assert_eq!(s.bucket_count(FLAT_LANES), 1);
        assert_eq!(s.bucket_members(FLAT_LANES).collect::<Vec<_>>(), vec![2]);
        // A jump past the whole ring recycles every lane.
        let mut far = RankState::new(0, 8, 1);
        far.begin_phase();
        far.relax(0, 1, &d1);
        far.advance_frontier(10 * FLAT_LANES);
        assert_eq!(far.next_nonempty_after(None), None);
    }

    #[test]
    fn reset_restores_the_fresh_initial_state() {
        // A reused state must be indistinguishable from a fresh one even
        // after a run that advanced the ring base past FLAT_LANES and left
        // spill entries behind — the two bug shapes a stale reuse leaks:
        // a base > 0 answering bucket-0 pushes as empty, and spill
        // entries from the previous query reappearing as live members.
        let d1 = DeltaParam::Finite(1);
        let mut s = RankState::new(0, 16, 2);
        s.begin_phase();
        s.relax(0, 2, &d1);
        s.relax(1, FLAT_LANES + 9, &d1); // spill entry
        s.relax(2, 3 * FLAT_LANES, &d1); // deep spill entry
        s.advance_frontier(FLAT_LANES + 9); // base well past 0
        s.charge_recv(0);
        assert!(s.bucket_count(0) == 0, "bucket 0 recycled by the advance");
        s.reset();
        assert!(s.dist.iter().all(|&d| d == INF));
        assert!(s.bucket_of.iter().all(|&b| b == INF_BUCKET));
        assert!(s.changed.is_empty() && s.active.is_empty());
        assert_eq!(s.loads.total(), 0);
        assert_eq!(s.next_nonempty_after(None), None, "no survivors anywhere");
        assert_eq!(s.window_count(0, 10 * FLAT_LANES), 0);
        // Bucket 0 must accept pushes again (the base rewound).
        s.set_root(5);
        assert_eq!(s.bucket_count(0), 1);
        assert_eq!(s.bucket_members(0).collect::<Vec<_>>(), vec![5]);
        // And the spill list must not resurrect the old entries.
        assert_eq!(s.bucket_count(FLAT_LANES + 9), 0);
        assert_eq!(s.bucket_count(3 * FLAT_LANES), 0);
    }

    #[test]
    fn stamp_bitset_basics() {
        let mut b = StampBitset::new(130);
        assert!(b.is_empty());
        assert!(b.insert(0));
        assert!(b.insert(129));
        assert!(!b.insert(0), "duplicate insert reports not-new");
        assert_eq!(b.len(), 2);
        assert!(b.contains(0) && b.contains(129) && !b.contains(64));
        assert_eq!(b.to_vec(), vec![0, 129]);
        b.clear();
        assert!(b.is_empty() && !b.contains(0));
        assert_eq!(b.to_vec(), Vec::<u32>::new());
        assert!(b.insert(64));
        assert_eq!(b.word(1), 1);
        assert_eq!(b.word(0), 0, "stale word reads as empty");
    }

    #[test]
    fn stamp_bitset_survives_stamp_wrap() {
        let mut b = StampBitset::new(70);
        b.insert(3);
        // Force the wrap: the next clear must reset every word stamp, so
        // no word from an ancient epoch can alias the fresh stamp.
        b.stamp = u32::MAX;
        b.clear();
        assert_eq!(b.stamp, 1);
        assert!(b.is_empty() && !b.contains(3));
        b.insert(69);
        assert_eq!(b.to_vec(), vec![69]);
    }
}
