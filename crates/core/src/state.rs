//! Per-rank mutable state of the distributed Δ-stepping engine.
//!
//! Each rank owns the tentative distances and bucket structure of its local
//! vertices. Buckets use the classic lazy-deletion representation: a
//! `BTreeMap` from bucket index to a vector of members plus an authoritative
//! `bucket_of` array; entries whose `bucket_of` no longer matches are
//! skipped at iteration time. A vertex only ever moves to a strictly lower
//! bucket, so it appears at most once in any bucket vector. Exact
//! per-bucket counts are kept alongside for the next-bucket collective.

use std::collections::BTreeMap;

use sssp_dist::ThreadLoads;

use crate::policy::{SteppingPolicy, NO_PROPOSAL};

/// "Infinite" tentative distance.
pub const INF: u64 = u64::MAX;

/// Bucket index of unreached vertices (the paper's B∞).
pub const INF_BUCKET: u64 = u64::MAX;

/// State of one simulated rank.
#[derive(Debug)]
pub struct RankState {
    /// Rank id (for diagnostics).
    pub rank: usize,
    /// Tentative distance per local vertex.
    pub dist: Vec<u64>,
    /// Current bucket per local vertex ([`INF_BUCKET`] = unreached).
    pub bucket_of: Vec<u64>,
    buckets: BTreeMap<u64, Vec<u32>>,
    counts: BTreeMap<u64, u64>,
    /// Vertices whose distance changed in the current phase (deduplicated).
    pub changed: Vec<u32>,
    changed_stamp: Vec<u32>,
    stamp: u32,
    /// Active vertices for the next phase.
    pub active: Vec<u32>,
    /// Per-thread operation ledger for the current superstep.
    pub loads: ThreadLoads,
}

impl RankState {
    /// Fresh state for a rank owning `n_local` vertices, all unreached.
    pub fn new(rank: usize, n_local: usize, threads: usize) -> Self {
        RankState {
            rank,
            dist: vec![INF; n_local],
            bucket_of: vec![INF_BUCKET; n_local],
            buckets: BTreeMap::new(),
            counts: BTreeMap::new(),
            changed: Vec::new(),
            changed_stamp: vec![0; n_local],
            stamp: 0,
            active: Vec::new(),
            loads: ThreadLoads::new(threads),
        }
    }

    /// Number of vertices this rank owns.
    pub fn n_local(&self) -> usize {
        self.dist.len()
    }

    /// Place the root: distance 0, bucket 0.
    pub fn set_root(&mut self, local: u32) {
        self.dist[local as usize] = 0;
        self.bucket_of[local as usize] = 0;
        self.buckets.entry(0).or_default().push(local);
        *self.counts.entry(0).or_insert(0) += 1;
    }

    /// Begin a new phase: clear the changed set.
    pub fn begin_phase(&mut self) {
        self.changed.clear();
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp wrapped: reset markers to keep correctness.
            self.changed_stamp.fill(0);
            self.stamp = 1;
        }
    }

    /// Apply `Relax`: `d(v) ← min(d(v), nd)`, moving buckets as required
    /// (Fig. 2 of the paper). Returns whether the distance decreased. The
    /// bucket the vertex lands in is the policy's to decide ([`DeltaParam`]
    /// for classic Δ-stepping).
    ///
    /// [`DeltaParam`]: crate::config::DeltaParam
    #[inline]
    pub fn relax<P: SteppingPolicy>(&mut self, local: u32, nd: u64, policy: &P) -> bool {
        let li = local as usize;
        if nd >= self.dist[li] {
            return false;
        }
        let old_b = self.bucket_of[li];
        let new_b = policy.bucket_of(nd);
        debug_assert!(
            new_b <= old_b,
            "bucket monotonicity violated: relax(local {local}, d = {nd}) would move \
             bucket {old_b} -> {new_b}"
        );
        self.dist[li] = nd;
        if new_b < old_b {
            if old_b != INF_BUCKET {
                // sssp-lint: allow(no-panic-hot-path): count exists whenever
                // bucket_of is finite; a miss means corrupted bucket state and
                // continuing would return wrong distances.
                let c = self.counts.get_mut(&old_b).expect("bucket count missing");
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&old_b);
                }
            }
            self.bucket_of[li] = new_b;
            self.buckets.entry(new_b).or_default().push(local);
            *self.counts.entry(new_b).or_insert(0) += 1;
        }
        if self.changed_stamp[li] != self.stamp {
            self.changed_stamp[li] = self.stamp;
            self.changed.push(local);
        }
        true
    }

    /// Live members of bucket `k` (lazy deletion filtered).
    pub fn bucket_members(&self, k: u64) -> impl Iterator<Item = u32> + '_ {
        self.buckets
            .get(&k)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |&v| self.bucket_of[v as usize] == k)
    }

    /// Live members of every bucket in `[lo, hi]` (lazy deletion filtered),
    /// in bucket order.
    pub fn window_members(&self, lo: u64, hi: u64) -> impl Iterator<Item = u32> + '_ {
        self.buckets.range(lo..=hi).flat_map(move |(&b, members)| {
            members
                .iter()
                .copied()
                .filter(move |&v| self.bucket_of[v as usize] == b)
        })
    }

    /// Raw (unfiltered) scan length over the bucket range `[lo, hi]` — the
    /// cost of collecting the window's members.
    pub fn window_scan_len(&self, lo: u64, hi: u64) -> usize {
        self.buckets.range(lo..=hi).map(|(_, m)| m.len()).sum()
    }

    /// Exact number of vertices currently in buckets `[lo, hi]`.
    pub fn window_count(&self, lo: u64, hi: u64) -> u64 {
        self.counts.range(lo..=hi).map(|(_, &c)| c).sum()
    }

    /// ρ-stepping's per-rank window proposal: the largest bucket `H ≥ k`
    /// such that at most `cap` local vertices sit in buckets `[k, H]` —
    /// but at least `k` itself, since the globally selected bucket must be
    /// inside the window. Returns [`NO_PROPOSAL`] when even the whole
    /// suffix stays within the cap.
    pub fn prefix_window_end(&self, k: u64, cap: u64) -> u64 {
        let mut cum = 0u64;
        let mut last = k;
        for (&b, &c) in self.counts.range(k..) {
            cum += c;
            if cum > cap {
                return if b == k { k } else { last };
            }
            last = b;
        }
        NO_PROPOSAL
    }

    /// Raw (unfiltered) length of bucket `k`'s vector — the scan cost of
    /// collecting the bucket's members.
    pub fn bucket_scan_len(&self, k: u64) -> usize {
        self.buckets.get(&k).map_or(0, Vec::len)
    }

    /// Exact number of vertices currently in bucket `k`.
    pub fn bucket_count(&self, k: u64) -> u64 {
        self.counts.get(&k).copied().unwrap_or(0)
    }

    /// Smallest non-empty bucket index `> k`, if any. Pass `None` to search
    /// from the beginning.
    pub fn next_nonempty_after(&self, k: Option<u64>) -> Option<u64> {
        let range = match k {
            Some(k) => self.counts.range(k + 1..),
            None => self.counts.range(..),
        };
        range.filter(|&(_, &c)| c > 0).map(|(&b, _)| b).next()
    }

    /// Number of unsettled vertices (bucket index > `k`), i.e. the scan
    /// extent of a pull phase for current bucket `k`.
    pub fn count_unsettled_after(&self, k: u64) -> u64 {
        let later: u64 = self.counts.range(k + 1..).map(|(_, &c)| c).sum();
        let infinite = self.bucket_of.iter().filter(|&&b| b == INF_BUCKET).count() as u64;
        later + infinite
    }

    /// Collect the live members of bucket `k` into `active`, reusing its
    /// capacity (all `collect_active_*` methods refill in place so the
    /// active-set buffer survives across phases without reallocation).
    pub fn collect_active_from_bucket(&mut self, k: u64) {
        self.collect_active_from_window(k, k);
    }

    /// Collect the live members of every bucket in `[lo, hi]` into
    /// `active`, reusing its capacity.
    pub fn collect_active_from_window(&mut self, lo: u64, hi: u64) {
        self.active.clear();
        let bucket_of = &self.bucket_of;
        for (&b, members) in self.buckets.range(lo..=hi) {
            self.active.extend(
                members
                    .iter()
                    .copied()
                    .filter(|&v| bucket_of[v as usize] == b),
            );
        }
    }

    /// Collect every unsettled finite vertex (the hybrid tail's initial
    /// active set), reusing `active`'s capacity.
    pub fn collect_active_unsettled(&mut self, k: u64) {
        let n = sssp_graph::checked_u32(self.n_local());
        self.active.clear();
        let bucket_of = &self.bucket_of;
        self.active.extend((0..n).filter(|&v| {
            let b = bucket_of[v as usize];
            b > k && b != INF_BUCKET
        }));
    }

    /// Refill `active` with the changed vertices currently in bucket `k`
    /// (the next short phase's frontier), reusing `active`'s capacity.
    pub fn collect_active_changed_in_bucket(&mut self, k: u64) {
        self.collect_active_changed_in_window(k, k);
    }

    /// Refill `active` with the changed vertices currently in buckets
    /// `[lo, hi]` (the next short phase's frontier of a window epoch),
    /// reusing `active`'s capacity.
    pub fn collect_active_changed_in_window(&mut self, lo: u64, hi: u64) {
        self.active.clear();
        let (changed, bucket_of) = (&self.changed, &self.bucket_of);
        self.active.extend(changed.iter().copied().filter(|&v| {
            let b = bucket_of[v as usize];
            lo <= b && b <= hi
        }));
    }

    /// Refill `active` with every changed vertex (the Bellman-Ford tail's
    /// next frontier), reusing `active`'s capacity.
    pub fn collect_active_changed(&mut self) {
        self.active.clear();
        self.active.extend_from_slice(&self.changed);
    }

    /// Charge the receive-side processing of one message to the thread
    /// owning the target vertex. Receive work is O(1) per message, so it is
    /// never spread (spreading would hide exactly the per-thread imbalance
    /// the decision heuristic's cost model is supposed to see).
    #[inline]
    pub fn charge_recv(&mut self, target: u32) {
        self.loads.charge(target as usize, 1, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeltaParam;

    fn delta5() -> DeltaParam {
        DeltaParam::Finite(5)
    }

    #[test]
    fn window_helpers_cover_bucket_ranges() {
        let mut s = RankState::new(0, 8, 1);
        s.begin_phase();
        s.relax(0, 3, &delta5()); // bucket 0
        s.relax(1, 7, &delta5()); // bucket 1
        s.relax(2, 12, &delta5()); // bucket 2
        s.relax(3, 13, &delta5()); // bucket 2
        assert_eq!(s.window_count(0, 1), 2);
        assert_eq!(s.window_count(1, 2), 3);
        assert_eq!(s.window_members(0, 2).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        s.collect_active_from_window(1, 2);
        assert_eq!(s.active, vec![1, 2, 3]);
        s.collect_active_changed_in_window(2, 2);
        assert_eq!(s.active, vec![2, 3]);
        // A vertex that moved below the window drops out everywhere.
        s.relax(2, 1, &delta5());
        assert_eq!(s.window_members(2, 2).collect::<Vec<_>>(), vec![3]);
        assert_eq!(s.window_scan_len(2, 2), 2); // stale entry still scanned
        assert_eq!(s.window_count(2, 2), 1);
    }

    #[test]
    fn prefix_window_end_respects_the_cap() {
        let mut s = RankState::new(0, 8, 1);
        s.begin_phase();
        s.relax(0, 3, &delta5()); // bucket 0
        s.relax(1, 7, &delta5()); // bucket 1
        s.relax(2, 12, &delta5()); // bucket 2
        s.relax(3, 13, &delta5()); // bucket 2
        // cap 1: only bucket 0 fits.
        assert_eq!(s.prefix_window_end(0, 1), 0);
        // cap 2: buckets 0..=1 fit, bucket 2 would exceed.
        assert_eq!(s.prefix_window_end(0, 2), 1);
        // cap 4: everything fits — no bound.
        assert_eq!(s.prefix_window_end(0, 4), NO_PROPOSAL);
        // Even a cap the selected bucket alone exceeds proposes k itself.
        assert_eq!(s.prefix_window_end(2, 1), 2);
    }

    #[test]
    fn root_goes_to_bucket_zero() {
        let mut s = RankState::new(0, 10, 2);
        s.set_root(3);
        assert_eq!(s.dist[3], 0);
        assert_eq!(s.bucket_count(0), 1);
        assert_eq!(s.bucket_members(0).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn relax_improves_and_moves_buckets() {
        let mut s = RankState::new(0, 4, 1);
        s.begin_phase();
        assert!(s.relax(1, 12, &delta5())); // bucket 2
        assert_eq!(s.bucket_of[1], 2);
        assert!(s.relax(1, 3, &delta5())); // bucket 0
        assert_eq!(s.bucket_of[1], 0);
        assert_eq!(s.bucket_count(2), 0);
        assert_eq!(s.bucket_count(0), 1);
        assert!(!s.relax(1, 3, &delta5())); // equal: no change
        assert!(!s.relax(1, 7, &delta5())); // worse: no change
    }

    #[test]
    fn changed_is_deduplicated() {
        let mut s = RankState::new(0, 4, 1);
        s.begin_phase();
        s.relax(2, 100, &delta5());
        s.relax(2, 50, &delta5());
        s.relax(2, 20, &delta5());
        assert_eq!(s.changed, vec![2]);
        s.begin_phase();
        assert!(s.changed.is_empty());
        s.relax(2, 10, &delta5());
        assert_eq!(s.changed, vec![2]);
    }

    #[test]
    fn lazy_deletion_filters_members() {
        let mut s = RankState::new(0, 4, 1);
        s.begin_phase();
        s.relax(1, 12, &delta5()); // bucket 2
        s.relax(2, 13, &delta5()); // bucket 2
        s.relax(1, 2, &delta5()); // moves to bucket 0; stale entry remains in 2
        let members: Vec<u32> = s.bucket_members(2).collect();
        assert_eq!(members, vec![2]);
        assert_eq!(s.bucket_scan_len(2), 2); // stale entry still scanned
        assert_eq!(s.bucket_count(2), 1);
    }

    #[test]
    fn next_nonempty_after_skips_empties() {
        let mut s = RankState::new(0, 8, 1);
        s.begin_phase();
        s.relax(0, 3, &delta5()); // bucket 0
        s.relax(1, 26, &delta5()); // bucket 5
        assert_eq!(s.next_nonempty_after(None), Some(0));
        assert_eq!(s.next_nonempty_after(Some(0)), Some(5));
        assert_eq!(s.next_nonempty_after(Some(5)), None);
    }

    #[test]
    fn unsettled_counts_include_infinite() {
        let mut s = RankState::new(0, 6, 1);
        s.begin_phase();
        s.relax(0, 3, &delta5()); // bucket 0
        s.relax(1, 26, &delta5()); // bucket 5
                                   // 4 INF vertices + 1 in bucket 5.
        assert_eq!(s.count_unsettled_after(0), 5);
        assert_eq!(s.count_unsettled_after(5), 4);
    }

    #[test]
    fn collect_active_unsettled_excludes_inf_and_settled() {
        let mut s = RankState::new(0, 6, 1);
        s.begin_phase();
        s.relax(0, 3, &delta5()); // settled after bucket 0
        s.relax(1, 26, &delta5());
        s.relax(2, 31, &delta5());
        s.collect_active_unsettled(0);
        assert_eq!(s.active, vec![1, 2]);
    }

    #[test]
    fn collect_active_reuses_capacity_in_place() {
        let mut s = RankState::new(0, 16, 2);
        s.begin_phase();
        for v in 0..8 {
            s.relax(v, 3, &delta5()); // all in bucket 0
        }
        s.collect_active_from_bucket(0);
        assert_eq!(s.active.len(), 8);
        let cap = s.active.capacity();
        let ptr = s.active.as_ptr();
        // Refilling with fewer members must not reallocate.
        s.begin_phase();
        s.relax(9, 2, &delta5());
        s.collect_active_changed_in_bucket(0);
        assert_eq!(s.active, vec![9]);
        assert_eq!(s.active.capacity(), cap);
        assert_eq!(s.active.as_ptr(), ptr);
        s.collect_active_changed();
        assert_eq!(s.active, vec![9]);
        assert_eq!(s.active.as_ptr(), ptr);
    }

    #[test]
    fn collect_active_changed_in_bucket_filters_moved_vertices() {
        let mut s = RankState::new(0, 8, 1);
        s.begin_phase();
        s.relax(1, 3, &delta5()); // bucket 0
        s.relax(2, 12, &delta5()); // bucket 2 — not in bucket 0
        s.collect_active_changed_in_bucket(0);
        assert_eq!(s.active, vec![1]);
    }

    #[test]
    fn charge_recv_lands_on_target_owner_thread() {
        let mut s = RankState::new(0, 8, 4);
        // Locals 0 and 4 are both owned by thread 0 (cyclic ownership).
        s.charge_recv(0);
        s.charge_recv(4);
        s.charge_recv(1);
        assert_eq!(s.loads.max(), 2);
        assert_eq!(s.loads.total(), 3);
    }

    #[test]
    fn infinite_delta_single_bucket() {
        let mut s = RankState::new(0, 4, 1);
        s.begin_phase();
        s.relax(0, 1_000_000, &DeltaParam::Infinite);
        s.relax(1, 5, &DeltaParam::Infinite);
        assert_eq!(s.bucket_of[0], 0);
        assert_eq!(s.bucket_of[1], 0);
        assert_eq!(s.bucket_count(0), 2);
    }
}
