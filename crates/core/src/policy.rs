//! Pluggable stepping policies: the abstraction that owns bucket
//! assignment, epoch-window selection and the short/long edge split.
//!
//! Dong et al.'s stepping-algorithm framework shows Dijkstra, Δ-stepping
//! and Bellman-Ford are all instances of one lazy-batched priority
//! structure with an abstract "step" rule, and Blelloch et al.'s radius
//! stepping is another instance. This module factors that rule out of the
//! engine: a [`SteppingPolicy`] maps tentative distances to bucket
//! indices, decides how far past the globally smallest non-empty bucket
//! one epoch may reach (the [`EpochWindow`]), and fixes the short/long
//! weight boundary the IOS split and the push/pull machinery use.
//!
//! The engine's correctness does not depend on *which* window a policy
//! picks, only on the window being a contiguous bucket range starting at
//! the globally smallest non-empty bucket: the in-window relaxation
//! fixpoint plus the settled prefix below the window make any such window
//! a generalized Δ-stepping bucket. Policies therefore only trade off
//! phase counts against redundant relaxations — exactly the Δ sweep of
//! Fig. 9, generalized.
//!
//! Three policies ship:
//!
//! * [`DeltaParam`] — the paper's Δ-stepping (the default). One bucket of
//!   width Δ per epoch; no window collective.
//! * [`RhoPolicy`] — ρ-stepping: Dial-granularity buckets; each epoch
//!   extends the window until ≈ρ vertices (cap ⌈ρ/p⌉ per rank) are
//!   inside, found with one extra `allreduce_min` over per-rank prefix
//!   proposals.
//! * [`RadiusPolicy`] — radius stepping: Dial-granularity buckets; the
//!   window reaches to the frontier minimum of `d(v) + r(v)` where
//!   `r(v)` is the ρ-th smallest incident edge weight, again via one
//!   `allreduce_min`.

use sssp_dist::LocalGraph;

use crate::config::{DeltaParam, SsspConfig, SteppingPolicyKind};
use crate::state::{RankState, INF};

/// The "no constraint" window proposal a rank feeds into the window
/// collective when its local state does not bound the epoch window. One
/// below the epoch-selection sentinel (`u64::MAX`), so a window can never
/// collide with "no bucket left".
pub const NO_PROPOSAL: u64 = u64::MAX - 1;

/// How the engine derives each epoch's window from the policy — the
/// discriminant both backends `match` on in the same source order, so the
/// protocol checker extracts the same per-policy collective schedule from
/// each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowRule {
    /// The window is exactly the selected bucket; no extra collective.
    SingleBucket,
    /// Extend the window over a count-bounded bucket prefix (ρ-stepping):
    /// one `allreduce_min` over per-rank [`RankState::prefix_window_end`]
    /// proposals.
    RhoPrefix,
    /// Extend the window to the frontier's `min d(v) + r(v)` ball (radius
    /// stepping): one `allreduce_min` over per-rank frontier proposals.
    RadiusBall,
}

/// The contiguous bucket range one epoch processes, plus the distance
/// bounds the kernels cut edges against. For Δ-stepping this degenerates
/// to the classic single bucket `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochWindow {
    /// First bucket of the window (the globally smallest non-empty one).
    pub lo: u64,
    /// Last bucket of the window (inclusive).
    pub hi: u64,
    /// Smallest tentative distance any window member can have — the pull
    /// threshold base of eq. 1 (`kΔ` under Δ-stepping).
    pub start_dist: u64,
    /// Largest tentative distance belonging to the window (inclusive) —
    /// the IOS inner-edge bound.
    pub end_dist: u64,
    /// The policy's short/long weight boundary: an edge is short iff
    /// `w < short_bound`. Carried here so the kernels need no policy
    /// reference on their hot paths.
    pub short_bound: u64,
}

impl EpochWindow {
    /// Whether bucket `b` lies inside the window.
    #[inline]
    pub fn contains(&self, b: u64) -> bool {
        self.lo <= b && b <= self.hi
    }
}

/// A stepping policy: bucket assignment + epoch-window selection + the
/// short/long edge split. See the module docs for the contract; DESIGN.md
/// §6g spells out what an implementation may and may not do between
/// collectives.
pub trait SteppingPolicy {
    /// Bucket index of a finite tentative distance. Must be monotone
    /// non-decreasing in `d` and must never return `u64::MAX` (the epoch
    /// collective's "no bucket left" sentinel).
    fn bucket_of(&self, d: u64) -> u64;

    /// The short/long weight boundary: an edge is short iff
    /// `w < short_bound()`. Policies without a meaningful split return
    /// `u64::MAX` (every edge short; the window's `end_dist` then carries
    /// the whole inner/outer split).
    fn short_bound(&self) -> u64;

    /// Which window-selection collective (if any) the engine runs after
    /// the epoch-selection collective.
    fn window_rule(&self) -> WindowRule;

    /// Build the epoch window from the selected bucket `k` and the
    /// globally reduced window end `hi` (ignored under
    /// [`WindowRule::SingleBucket`]).
    fn window_for(&self, k: u64, hi: u64) -> EpochWindow;

    /// This rank's proposal for the window end, fed into
    /// `allreduce_min`. Must depend only on rank-local state that is
    /// itself a deterministic function of the (deterministic) message
    /// history — never on rank id or timing. Return [`NO_PROPOSAL`] when
    /// the local state imposes no bound.
    fn window_proposal(&self, st: &RankState, lg: &LocalGraph, k: u64) -> u64;
}

impl SteppingPolicy for DeltaParam {
    #[inline]
    fn bucket_of(&self, d: u64) -> u64 {
        DeltaParam::bucket_of(self, d)
    }

    #[inline]
    fn short_bound(&self) -> u64 {
        DeltaParam::short_bound(self)
    }

    fn window_rule(&self) -> WindowRule {
        WindowRule::SingleBucket
    }

    fn window_for(&self, k: u64, _hi: u64) -> EpochWindow {
        EpochWindow {
            lo: k,
            hi: k,
            start_dist: match *self {
                DeltaParam::Finite(delta) => k.saturating_mul(delta as u64),
                DeltaParam::Infinite => 0,
            },
            end_dist: self.bucket_end(k),
            short_bound: DeltaParam::short_bound(self),
        }
    }

    fn window_proposal(&self, _st: &RankState, _lg: &LocalGraph, _k: u64) -> u64 {
        NO_PROPOSAL
    }
}

/// ρ-stepping (Dong et al.): lazy batched extraction of (about) the ρ
/// globally closest unsettled vertices per epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RhoPolicy {
    /// Per-rank member cap `⌈ρ/p⌉` (at least 1) applied to the window.
    cap: u64,
}

impl RhoPolicy {
    /// Policy extracting ≈`rho` vertices per epoch across `ranks` ranks.
    pub fn new(rho: u32, ranks: usize) -> Self {
        assert!(rho >= 1, "ρ must be at least 1");
        let p = ranks.max(1) as u64;
        RhoPolicy {
            cap: (rho as u64).div_ceil(p).max(1),
        }
    }

    /// The per-rank window cap (visible for tests).
    pub fn cap(&self) -> u64 {
        self.cap
    }
}

/// Dial-granularity bucket index shared by the non-Δ policies: the bucket
/// IS the distance, capped one below the epoch sentinel.
#[inline]
fn dial_bucket(d: u64) -> u64 {
    debug_assert!(d != INF, "bucket_of called on an INF distance");
    d.min(u64::MAX - 1)
}

impl SteppingPolicy for RhoPolicy {
    #[inline]
    fn bucket_of(&self, d: u64) -> u64 {
        dial_bucket(d)
    }

    #[inline]
    fn short_bound(&self) -> u64 {
        u64::MAX
    }

    fn window_rule(&self) -> WindowRule {
        WindowRule::RhoPrefix
    }

    fn window_for(&self, k: u64, hi: u64) -> EpochWindow {
        let hi = hi.max(k).min(NO_PROPOSAL);
        EpochWindow {
            lo: k,
            hi,
            start_dist: k,
            end_dist: hi,
            short_bound: u64::MAX,
        }
    }

    fn window_proposal(&self, st: &RankState, _lg: &LocalGraph, k: u64) -> u64 {
        st.prefix_window_end(k, self.cap)
    }
}

/// Radius stepping (Blelloch et al.): per-vertex radii replace the global
/// Δ — each epoch's window reaches to the frontier minimum of
/// `d(v) + r(v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadiusPolicy {
    /// `r(v)` is the weight of `v`'s ρ-th smallest incident edge.
    rho: u32,
}

impl RadiusPolicy {
    /// Policy with radii taken at the `rho`-th smallest incident weight.
    pub fn new(rho: u32) -> Self {
        assert!(rho >= 1, "ρ must be at least 1");
        RadiusPolicy { rho }
    }

    /// The radius of local vertex `ul`: its ρ-th smallest incident edge
    /// weight (the last one when the row is shorter, 0 when isolated).
    /// Rows are weight-sorted, so this is one index.
    fn radius(&self, lg: &LocalGraph, ul: u32) -> u64 {
        let (_, ws) = lg.row(ul as usize);
        if ws.is_empty() {
            0
        } else {
            ws[(self.rho as usize).min(ws.len()) - 1] as u64
        }
    }
}

impl SteppingPolicy for RadiusPolicy {
    #[inline]
    fn bucket_of(&self, d: u64) -> u64 {
        dial_bucket(d)
    }

    #[inline]
    fn short_bound(&self) -> u64 {
        u64::MAX
    }

    fn window_rule(&self) -> WindowRule {
        WindowRule::RadiusBall
    }

    fn window_for(&self, k: u64, hi: u64) -> EpochWindow {
        let hi = hi.max(k).min(NO_PROPOSAL);
        EpochWindow {
            lo: k,
            hi,
            start_dist: k,
            end_dist: hi,
            short_bound: u64::MAX,
        }
    }

    fn window_proposal(&self, st: &RankState, lg: &LocalGraph, k: u64) -> u64 {
        // The frontier bucket holds the globally closest vertices; under
        // Dial granularity d(v) = k for every live member, so the ball
        // bound is min over the local members of d(v) + r(v).
        let mut best = NO_PROPOSAL;
        for ul in st.bucket_members(k) {
            let ball = k.saturating_add(self.radius(lg, ul));
            best = best.min(ball);
        }
        best.min(NO_PROPOSAL)
    }
}

/// Concrete dispatch over the shipped policies, so the engine stays
/// non-generic (one instantiation of every kernel) while the trait keeps
/// the contract explicit. Constructed once per run from the config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyDispatch {
    /// Classic Δ-stepping (the default).
    Delta(DeltaParam),
    /// ρ-stepping.
    Rho(RhoPolicy),
    /// Radius stepping.
    Radius(RadiusPolicy),
}

impl PolicyDispatch {
    /// Build the run's policy from its configuration. `ranks` sizes the
    /// per-rank ρ cap.
    pub fn from_config(cfg: &SsspConfig, ranks: usize) -> PolicyDispatch {
        match cfg.policy {
            SteppingPolicyKind::Delta => PolicyDispatch::Delta(cfg.delta),
            SteppingPolicyKind::Rho(rho) => PolicyDispatch::Rho(RhoPolicy::new(rho, ranks)),
            SteppingPolicyKind::Radius(rho) => PolicyDispatch::Radius(RadiusPolicy::new(rho)),
        }
    }
}

impl SteppingPolicy for PolicyDispatch {
    #[inline]
    fn bucket_of(&self, d: u64) -> u64 {
        match self {
            PolicyDispatch::Delta(p) => SteppingPolicy::bucket_of(p, d),
            PolicyDispatch::Rho(p) => p.bucket_of(d),
            PolicyDispatch::Radius(p) => p.bucket_of(d),
        }
    }

    #[inline]
    fn short_bound(&self) -> u64 {
        match self {
            PolicyDispatch::Delta(p) => SteppingPolicy::short_bound(p),
            PolicyDispatch::Rho(p) => p.short_bound(),
            PolicyDispatch::Radius(p) => p.short_bound(),
        }
    }

    fn window_rule(&self) -> WindowRule {
        match self {
            PolicyDispatch::Delta(p) => p.window_rule(),
            PolicyDispatch::Rho(p) => p.window_rule(),
            PolicyDispatch::Radius(p) => p.window_rule(),
        }
    }

    fn window_for(&self, k: u64, hi: u64) -> EpochWindow {
        match self {
            PolicyDispatch::Delta(p) => p.window_for(k, hi),
            PolicyDispatch::Rho(p) => p.window_for(k, hi),
            PolicyDispatch::Radius(p) => p.window_for(k, hi),
        }
    }

    fn window_proposal(&self, st: &RankState, lg: &LocalGraph, k: u64) -> u64 {
        match self {
            PolicyDispatch::Delta(p) => p.window_proposal(st, lg, k),
            PolicyDispatch::Rho(p) => p.window_proposal(st, lg, k),
            PolicyDispatch::Radius(p) => p.window_proposal(st, lg, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsspConfig;

    #[test]
    fn delta_window_degenerates_to_the_classic_bucket() {
        let d = DeltaParam::Finite(5);
        let w = d.window_for(3, 999);
        assert_eq!((w.lo, w.hi), (3, 3));
        assert_eq!(w.start_dist, 15);
        assert_eq!(w.end_dist, 19);
        assert_eq!(w.short_bound, 5);
        assert!(w.contains(3) && !w.contains(2) && !w.contains(4));
        assert_eq!(d.window_rule(), WindowRule::SingleBucket);
        // Near the bucket cap the distance bounds saturate, not overflow.
        let top = d.window_for(u64::MAX - 1, 0);
        assert_eq!(top.end_dist, u64::MAX - 1);
    }

    #[test]
    fn infinite_delta_window_spans_everything() {
        let w = DeltaParam::Infinite.window_for(0, 7);
        assert_eq!((w.lo, w.hi), (0, 0));
        assert_eq!(w.start_dist, 0);
        assert_eq!(w.end_dist, u64::MAX - 1);
        assert_eq!(w.short_bound, u64::MAX);
    }

    #[test]
    fn rho_policy_caps_per_rank() {
        assert_eq!(RhoPolicy::new(64, 4).cap(), 16);
        assert_eq!(RhoPolicy::new(5, 4).cap(), 2);
        assert_eq!(RhoPolicy::new(1, 16).cap(), 1);
        let p = RhoPolicy::new(8, 2);
        assert_eq!(p.bucket_of(42), 42);
        assert_eq!(p.bucket_of(u64::MAX - 1), u64::MAX - 1);
        assert_eq!(p.short_bound(), u64::MAX);
        let w = p.window_for(10, 25);
        assert_eq!((w.lo, w.hi), (10, 25));
        assert_eq!((w.start_dist, w.end_dist), (10, 25));
        // The reduced end clamps to at least the selected bucket.
        assert_eq!(p.window_for(10, 3).hi, 10);
    }

    #[test]
    fn rho_proposal_counts_a_bucket_prefix() {
        let p = RhoPolicy::new(4, 2); // cap 2 per rank
        let mut st = RankState::new(0, 8, 1);
        st.begin_phase();
        st.relax(0, 3, &p);
        st.relax(1, 5, &p);
        st.relax(2, 9, &p);
        // Buckets {3: 1, 5: 1, 9: 1}; cap 2 admits buckets 3 and 5.
        assert_eq!(p.window_proposal(&st, &empty_lg(8), 3), 5);
        // Cap 1 stops at the first bucket.
        let tight = RhoPolicy::new(1, 2);
        assert_eq!(tight.window_proposal(&st, &empty_lg(8), 3), 3);
        // A cap nothing exceeds imposes no bound.
        let loose = RhoPolicy::new(100, 1);
        assert_eq!(loose.window_proposal(&st, &empty_lg(8), 3), NO_PROPOSAL);
    }

    fn empty_lg(n: usize) -> LocalGraph {
        LocalGraph::from_rows((0..n).map(|_| (Vec::new(), Vec::new())))
    }

    #[test]
    fn radius_proposal_is_the_frontier_ball_minimum() {
        let p = RadiusPolicy::new(2);
        // Vertex 0: weights [1, 4, 9] → r = 4. Vertex 1: [7] → r = 7.
        let lg = LocalGraph::from_rows(vec![
            (vec![1, 2, 3], vec![1, 4, 9]),
            (vec![0], vec![7]),
            (Vec::new(), Vec::new()),
        ]);
        let mut st = RankState::new(0, 3, 1);
        st.begin_phase();
        st.relax(0, 10, &p);
        st.relax(1, 10, &p);
        // Frontier bucket 10: min(10 + 4, 10 + 7) = 14.
        assert_eq!(p.window_proposal(&st, &lg, 10), 14);
        // An isolated frontier vertex has radius 0 (window = its bucket).
        st.relax(2, 4, &p);
        assert_eq!(p.window_proposal(&st, &lg, 4), 4);
        // No local members → no bound.
        assert_eq!(p.window_proposal(&st, &lg, 7), NO_PROPOSAL);
    }

    #[test]
    fn dispatch_matches_config() {
        let d = PolicyDispatch::from_config(&SsspConfig::del(25), 4);
        assert_eq!(d.window_rule(), WindowRule::SingleBucket);
        assert_eq!(d.bucket_of(49), 1);
        let r = PolicyDispatch::from_config(&SsspConfig::rho(64), 4);
        assert_eq!(r.window_rule(), WindowRule::RhoPrefix);
        assert_eq!(r.bucket_of(49), 49);
        let b = PolicyDispatch::from_config(&SsspConfig::radius(8), 4);
        assert_eq!(b.window_rule(), WindowRule::RadiusBall);
        assert_eq!(b.short_bound(), u64::MAX);
    }
}
