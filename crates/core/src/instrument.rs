//! Run instrumentation: every count the paper's figures are built from.

use sssp_comm::cost::TimeLedger;
use sssp_comm::stats::CommStats;

use crate::config::LongPhaseMode;

/// What kind of superstep a phase record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// A short-edge phase of some bucket.
    Short,
    /// A push-mode long-edge phase.
    LongPush,
    /// A pull-mode long-edge phase (requests + responses).
    LongPull,
    /// A Bellman-Ford phase of the hybrid tail.
    BellmanFord,
}

/// One relaxation superstep (Fig. 4 plots these in sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRecord {
    /// Bucket being processed (`u64::MAX` for the hybrid tail).
    pub bucket: u64,
    /// Which kind of phase this record covers.
    pub kind: PhaseKind,
    /// Relaxation messages generated (requests + responses for pull).
    pub relaxations: u64,
    /// Cross-rank messages.
    pub remote_msgs: u64,
}

/// Per-processed-bucket record (Fig. 7 and the §IV-G validation read these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketRecord {
    /// Bucket index k this epoch processed.
    pub bucket: u64,
    /// Vertices settled by this bucket (global).
    pub settled: u64,
    /// Mechanism used for the long-edge phase.
    pub mode: LongPhaseMode,
    /// Estimated volumes the decision heuristic compared.
    pub est_push: u64,
    /// Estimated pull volume used by the decision heuristic.
    pub est_pull: u64,
    /// Push-mode receiver-side classification (§III-B): targets already in
    /// the current bucket / an earlier bucket / a later bucket. Zero when
    /// the bucket ran in pull mode.
    pub self_edges: u64,
    /// Edges scanned backward (pull candidates examined).
    pub backward_edges: u64,
    /// Edges scanned forward (push relaxations attempted).
    pub forward_edges: u64,
    /// Pull-mode traffic. Zero when the bucket ran in push mode.
    pub requests: u64,
    /// Pull responses sent back to requesters.
    pub responses: u64,
    /// Data-exchange supersteps this epoch ran (short phases + the long
    /// phase's one to three exchanges).
    pub supersteps: u64,
    /// Messages of this epoch that stayed on their sender rank.
    pub local_msgs: u64,
    /// Messages of this epoch that crossed ranks.
    pub remote_msgs: u64,
    /// Messages sender-side coalescing removed this epoch.
    pub coalesced_msgs: u64,
}

/// Wall-clock nanoseconds spent in each phase family, recorded only by
/// the threaded backend (the simulated engine charges ledger time instead
/// and leaves these zero). Each rank's timer spans kernel work *and* the
/// rendezvous wait inside the phase's exchanges, so merged values report
/// the slowest rank's critical path, not a sum of useful work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Short-edge phases (all buckets).
    pub short_ns: u64,
    /// Long push phases.
    pub long_push_ns: u64,
    /// Long pull phases (requests + responses, plus the IOS outer-short
    /// round when enabled).
    pub long_pull_ns: u64,
    /// Bellman-Ford tail rounds.
    pub bf_ns: u64,
}

impl PhaseTimings {
    /// Fold `ns` into the accumulator of `kind`.
    pub fn add(&mut self, kind: PhaseKind, ns: u64) {
        match kind {
            PhaseKind::Short => self.short_ns += ns,
            PhaseKind::LongPush => self.long_push_ns += ns,
            PhaseKind::LongPull => self.long_pull_ns += ns,
            PhaseKind::BellmanFord => self.bf_ns += ns,
        }
    }

    /// Combine with another rank's timings by per-phase maximum (the
    /// slowest rank bounds the wall clock of a bulk-synchronous phase).
    pub fn max(&self, other: &PhaseTimings) -> PhaseTimings {
        PhaseTimings {
            short_ns: self.short_ns.max(other.short_ns),
            long_push_ns: self.long_push_ns.max(other.long_push_ns),
            long_pull_ns: self.long_pull_ns.max(other.long_pull_ns),
            bf_ns: self.bf_ns.max(other.bf_ns),
        }
    }

    /// True when no phase recorded any time (e.g. a simulated run).
    pub fn is_zero(&self) -> bool {
        *self == PhaseTimings::default()
    }
}

/// Aggregated statistics of one SSSP run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Buckets processed by Δ-stepping epochs (the hybrid tail, if any,
    /// counts as one more — see [`Self::buckets`]).
    pub epochs: u64,
    /// Total relaxation supersteps (short + long + Bellman-Ford phases).
    pub phases: u64,
    /// Bucket index at which hybridization switched to Bellman-Ford.
    pub hybrid_switch_at: Option<u64>,

    /// Relaxations performed in short-edge phases.
    pub short_relaxations: u64,
    /// Outer short edges deferred to the long phase by IOS.
    pub outer_short_relaxations: u64,
    /// Relaxations performed in long push phases.
    pub long_push_relaxations: u64,
    /// Pull requests issued.
    pub pull_requests: u64,
    /// Pull responses received.
    pub pull_responses: u64,
    /// Relaxations performed in Bellman-Ford tail phases.
    pub bf_relaxations: u64,

    /// Vertices with a finite final distance.
    pub reachable: u64,

    /// One record per phase, in execution order.
    pub phase_records: Vec<PhaseRecord>,
    /// One record per processed bucket.
    pub bucket_records: Vec<BucketRecord>,
    /// The hybrid Bellman-Ford tail's pseudo-bucket record (`bucket` =
    /// `u64::MAX`), present iff the τ switch fired. Kept out of
    /// [`Self::bucket_records`] so per-Δ-bucket consumers stay unchanged.
    pub tail_record: Option<BucketRecord>,

    /// Message traffic ledger.
    pub comm: CommStats,
    /// Simulated time ledger.
    pub ledger: TimeLedger,
    /// Wall-clock per-phase timings (threaded backend only; all-zero on
    /// the simulated backend).
    pub wall: PhaseTimings,

    /// Ranks and threads the run was simulated with (for per-thread stats).
    pub num_ranks: usize,
    /// Logical threads per rank.
    pub threads_per_rank: usize,
}

impl RunStats {
    /// Total relaxation operations under the paper's accounting: pull
    /// requests and responses each count once ("contributing two times" per
    /// relaxed edge).
    pub fn relaxations_total(&self) -> u64 {
        self.short_relaxations
            + self.outer_short_relaxations
            + self.long_push_relaxations
            + self.pull_requests
            + self.pull_responses
            + self.bf_relaxations
    }

    /// Buckets including the hybrid tail's merged bucket (Fig 10d metric).
    pub fn buckets(&self) -> u64 {
        self.epochs + u64::from(self.hybrid_switch_at.is_some())
    }

    /// Data-exchange supersteps recorded by the comm layer — the
    /// denominator of `perf_baseline`'s allocations-per-superstep metric.
    pub fn supersteps(&self) -> u64 {
        self.comm.num_supersteps() as u64
    }

    /// Average relaxations per thread (Fig 10c metric).
    pub fn relaxations_per_thread(&self) -> f64 {
        let t = (self.num_ranks * self.threads_per_rank).max(1) as f64;
        self.relaxations_total() as f64 / t
    }

    /// Simulated GTEPS for an input edge count `m`.
    pub fn gteps(&self, m_edges: u64) -> f64 {
        sssp_comm::cost::teps(m_edges, self.ledger.total_s()) / 1e9
    }

    /// Dump the per-phase series (the data behind Fig. 4) as CSV.
    pub fn phases_csv(&self) -> String {
        let mut out = String::from("phase,bucket,kind,relaxations,remote_msgs\n");
        for (i, r) in self.phase_records.iter().enumerate() {
            let bucket = if r.bucket == u64::MAX {
                "hybrid".to_string()
            } else {
                r.bucket.to_string()
            };
            out.push_str(&format!(
                "{},{},{:?},{},{}\n",
                i, bucket, r.kind, r.relaxations, r.remote_msgs
            ));
        }
        out
    }

    /// Dump the per-bucket series (the data behind Fig. 7) as CSV. The
    /// hybrid tail's pseudo-bucket, when present, is the last row
    /// (`bucket` column reads `hybrid`).
    pub fn buckets_csv(&self) -> String {
        let mut out = String::from(
            "bucket,settled,mode,est_push,est_pull,self,backward,forward,requests,responses,\
             supersteps,local_msgs,remote_msgs,coalesced_msgs\n",
        );
        for r in self.bucket_records.iter().chain(self.tail_record.iter()) {
            let bucket = if r.bucket == u64::MAX {
                "hybrid".to_string()
            } else {
                r.bucket.to_string()
            };
            out.push_str(&format!(
                "{},{},{:?},{},{},{},{},{},{},{},{},{},{},{}\n",
                bucket,
                r.settled,
                r.mode,
                r.est_push,
                r.est_pull,
                r.self_edges,
                r.backward_edges,
                r.forward_edges,
                r.requests,
                r.responses,
                r.supersteps,
                r.local_msgs,
                r.remote_msgs,
                r.coalesced_msgs
            ));
        }
        out
    }

    /// Totals of the comm-ledger steps not yet attributed to a bucket
    /// record: `(supersteps, local_msgs, remote_msgs, coalesced_msgs)`.
    /// The recorder calls this when closing an epoch (or the hybrid tail)
    /// to fill the record's per-epoch traffic fields.
    pub(crate) fn epoch_window(&self) -> (u64, u64, u64, u64) {
        let consumed: u64 = self
            .bucket_records
            .iter()
            .chain(self.tail_record.iter())
            .map(|r| r.supersteps)
            .sum();
        let steps = self.comm.steps.iter().skip(consumed as usize);
        let mut w = (0u64, 0u64, 0u64, 0u64);
        for s in steps {
            w.0 += 1;
            w.1 += s.local_msgs;
            w.2 += s.remote_msgs;
            w.3 += s.coalesced_msgs;
        }
        w
    }
}

/// A backend-neutral telemetry trace of one SSSP run: global traffic
/// totals plus the per-phase and per-bucket records, with every timing
/// field (wall clock, simulated ledger) deliberately excluded — so a
/// simulated and a threaded run of the same configuration produce traces
/// that compare equal field-for-field. Exported and re-imported through a
/// small hand-rolled JSON codec ([`RunTrace::to_json`] /
/// [`RunTrace::from_json`]) consumed by the `trace_diff` tool.
///
/// Collective counts are also excluded: the backends intentionally differ
/// there (the threaded §III-C decision runs five allreduces where the
/// simulator charges one allgather).
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// Which backend produced the trace (`"simulated"` or `"threaded"`).
    /// Informational only — [`RunTrace::diff`] ignores it.
    pub backend: String,
    /// Ranks the run executed with.
    pub ranks: usize,
    /// Total data-exchange supersteps.
    pub supersteps: u64,
    /// Messages that stayed on their sender rank.
    pub local_msgs: u64,
    /// Messages that crossed ranks.
    pub remote_msgs: u64,
    /// Framed wire bytes of the cross-rank traffic.
    pub remote_bytes: u64,
    /// Messages removed by sender-side coalescing.
    pub coalesced_msgs: u64,
    /// Largest per-rank send volume of any single superstep (bytes).
    pub max_step_send_bytes: u64,
    /// Largest per-rank receive volume of any single superstep (bytes).
    pub max_step_recv_bytes: u64,
    /// Bucket at which the hybrid τ switch fired, if it did.
    pub hybrid_switch_at: Option<u64>,
    /// Wall-clock per-phase timings (threaded backend only). Like every
    /// other timing quantity, [`RunTrace::diff`] ignores them; they ride
    /// along for reporting, serialized only when nonzero so deterministic
    /// simulated traces stay byte-stable.
    pub timings: PhaseTimings,
    /// One record per relaxation superstep-group, in execution order.
    pub phases: Vec<PhaseRecord>,
    /// One record per processed Δ-bucket, in execution order.
    pub buckets: Vec<BucketRecord>,
    /// The hybrid tail's merged pseudo-bucket record, if the switch fired.
    pub tail: Option<BucketRecord>,
}

impl RunTrace {
    /// Project the telemetry trace out of a finished run's stats. For the
    /// threaded backend this is applied per rank and the per-rank traces
    /// are merged (sums for volumes, maxima for maxima, equality-checked
    /// for globally reduced quantities).
    pub fn from_run_stats(stats: &RunStats, backend: &str) -> RunTrace {
        RunTrace {
            backend: backend.to_string(),
            ranks: stats.num_ranks,
            supersteps: stats.comm.num_supersteps() as u64,
            local_msgs: stats.comm.total_local_msgs(),
            remote_msgs: stats.comm.total_remote_msgs(),
            remote_bytes: stats.comm.total_remote_bytes(),
            coalesced_msgs: stats.comm.total_coalesced_msgs(),
            max_step_send_bytes: stats
                .comm
                .steps
                .iter()
                .map(|s| s.max_rank_send_bytes)
                .max()
                .unwrap_or(0),
            max_step_recv_bytes: stats
                .comm
                .steps
                .iter()
                .map(|s| s.max_rank_recv_bytes)
                .max()
                .unwrap_or(0),
            hybrid_switch_at: stats.hybrid_switch_at,
            timings: stats.wall,
            phases: stats.phase_records.clone(),
            buckets: stats.bucket_records.clone(),
            tail: stats.tail_record,
        }
    }

    /// Serialize the trace as JSON: scalars first, then one line per phase
    /// and per bucket record (the line-oriented layout is what
    /// [`RunTrace::from_json`] parses).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"trace\": \"sssp-run-trace\",\n");
        s.push_str(&format!("  \"backend\": \"{}\",\n", self.backend));
        s.push_str(&format!("  \"ranks\": {},\n", self.ranks));
        s.push_str(&format!("  \"supersteps\": {},\n", self.supersteps));
        s.push_str(&format!("  \"local_msgs\": {},\n", self.local_msgs));
        s.push_str(&format!("  \"remote_msgs\": {},\n", self.remote_msgs));
        s.push_str(&format!("  \"remote_bytes\": {},\n", self.remote_bytes));
        s.push_str(&format!("  \"coalesced_msgs\": {},\n", self.coalesced_msgs));
        s.push_str(&format!(
            "  \"max_step_send_bytes\": {},\n",
            self.max_step_send_bytes
        ));
        s.push_str(&format!(
            "  \"max_step_recv_bytes\": {},\n",
            self.max_step_recv_bytes
        ));
        match self.hybrid_switch_at {
            Some(k) => s.push_str(&format!("  \"hybrid_switch_at\": {k},\n")),
            None => s.push_str("  \"hybrid_switch_at\": null,\n"),
        }
        if !self.timings.is_zero() {
            s.push_str(&format!("  \"short_ns\": {},\n", self.timings.short_ns));
            s.push_str(&format!(
                "  \"long_push_ns\": {},\n",
                self.timings.long_push_ns
            ));
            s.push_str(&format!(
                "  \"long_pull_ns\": {},\n",
                self.timings.long_pull_ns
            ));
            s.push_str(&format!("  \"bf_ns\": {},\n", self.timings.bf_ns));
        }
        s.push_str("  \"phases\": [\n");
        let phase_lines: Vec<String> = self.phases.iter().map(phase_json).collect();
        s.push_str(&phase_lines.join(",\n"));
        if !phase_lines.is_empty() {
            s.push('\n');
        }
        s.push_str("  ],\n");
        s.push_str("  \"buckets\": [\n");
        let bucket_lines: Vec<String> = self.buckets.iter().map(bucket_json).collect();
        s.push_str(&bucket_lines.join(",\n"));
        if !bucket_lines.is_empty() {
            s.push('\n');
        }
        s.push_str("  ],\n");
        match &self.tail {
            Some(t) => s.push_str(&format!("  \"tail\":\n{}\n", bucket_json(t))),
            None => s.push_str("  \"tail\": null\n"),
        }
        s.push_str("}\n");
        s
    }

    /// Parse a trace produced by [`RunTrace::to_json`]. This is a codec
    /// for our own line-oriented output, not a general JSON parser.
    pub fn from_json(text: &str) -> Result<RunTrace, String> {
        if !text.contains("\"trace\": \"sssp-run-trace\"") {
            return Err("not an sssp run trace".to_string());
        }
        // Top-level scalars live strictly before the "phases" array, so
        // key lookups cannot collide with the per-record keys below it.
        let head_end = text
            .find("\"phases\"")
            .ok_or_else(|| "missing \"phases\" array".to_string())?;
        let head = &text[..head_end];
        let hybrid = {
            let raw = raw_value(head, "hybrid_switch_at")?;
            if raw == "null" {
                None
            } else {
                Some(parse_u64(raw, "hybrid_switch_at")?)
            }
        };
        let mut phases = Vec::new();
        for line in array_lines(text, "\"phases\": [")? {
            phases.push(parse_phase_line(line)?);
        }
        let mut buckets = Vec::new();
        for line in array_lines(text, "\"buckets\": [")? {
            buckets.push(parse_bucket_line(line)?);
        }
        let tail = {
            let at = text
                .find("\"tail\":")
                .ok_or_else(|| "missing \"tail\" field".to_string())?;
            let rest = text["\"tail\":".len() + at..].trim_start();
            if rest.starts_with("null") {
                None
            } else {
                let end = rest
                    .find('}')
                    .ok_or_else(|| "unterminated tail record".to_string())?;
                Some(parse_bucket_line(&rest[..=end])?)
            }
        };
        let timings = PhaseTimings {
            short_ns: num_value_or_zero(head, "short_ns")?,
            long_push_ns: num_value_or_zero(head, "long_push_ns")?,
            long_pull_ns: num_value_or_zero(head, "long_pull_ns")?,
            bf_ns: num_value_or_zero(head, "bf_ns")?,
        };
        Ok(RunTrace {
            backend: str_value(head, "backend")?.to_string(),
            ranks: parse_u64(raw_value(head, "ranks")?, "ranks")? as usize,
            supersteps: num_value(head, "supersteps")?,
            local_msgs: num_value(head, "local_msgs")?,
            remote_msgs: num_value(head, "remote_msgs")?,
            remote_bytes: num_value(head, "remote_bytes")?,
            coalesced_msgs: num_value(head, "coalesced_msgs")?,
            max_step_send_bytes: num_value(head, "max_step_send_bytes")?,
            max_step_recv_bytes: num_value(head, "max_step_recv_bytes")?,
            hybrid_switch_at: hybrid,
            timings,
            phases,
            buckets,
            tail,
        })
    }

    /// Compare two traces field-for-field, ignoring `backend` and the
    /// wall-clock `timings` (timing is exactly what may differ between
    /// backends and runs). Returns one
    /// human-readable line per mismatch; an empty vector means the traces
    /// agree. This is the equality the differential tests and the
    /// `trace_diff` tool gate on.
    pub fn diff(&self, other: &RunTrace) -> Vec<String> {
        let mut out = Vec::new();
        if self.ranks != other.ranks {
            out.push(format!("ranks: {} vs {}", self.ranks, other.ranks));
        }
        let scalars = [
            ("supersteps", self.supersteps, other.supersteps),
            ("local_msgs", self.local_msgs, other.local_msgs),
            ("remote_msgs", self.remote_msgs, other.remote_msgs),
            ("remote_bytes", self.remote_bytes, other.remote_bytes),
            ("coalesced_msgs", self.coalesced_msgs, other.coalesced_msgs),
            (
                "max_step_send_bytes",
                self.max_step_send_bytes,
                other.max_step_send_bytes,
            ),
            (
                "max_step_recv_bytes",
                self.max_step_recv_bytes,
                other.max_step_recv_bytes,
            ),
        ];
        for (name, a, b) in scalars {
            if a != b {
                out.push(format!("{name}: {a} vs {b}"));
            }
        }
        if self.hybrid_switch_at != other.hybrid_switch_at {
            out.push(format!(
                "hybrid_switch_at: {:?} vs {:?}",
                self.hybrid_switch_at, other.hybrid_switch_at
            ));
        }
        if self.phases.len() != other.phases.len() {
            out.push(format!(
                "phases.len: {} vs {}",
                self.phases.len(),
                other.phases.len()
            ));
        } else {
            for (i, (a, b)) in self.phases.iter().zip(&other.phases).enumerate() {
                if a != b {
                    out.push(format!("phases[{i}]: {a:?} vs {b:?}"));
                }
            }
        }
        if self.buckets.len() != other.buckets.len() {
            out.push(format!(
                "buckets.len: {} vs {}",
                self.buckets.len(),
                other.buckets.len()
            ));
        } else {
            for (i, (a, b)) in self.buckets.iter().zip(&other.buckets).enumerate() {
                diff_bucket(&format!("buckets[{i}]"), a, b, &mut out);
            }
        }
        match (&self.tail, &other.tail) {
            (Some(a), Some(b)) => diff_bucket("tail", a, b, &mut out),
            (None, None) => {}
            (a, b) => out.push(format!("tail presence: {} vs {}", a.is_some(), b.is_some())),
        }
        out
    }
}

fn phase_json(p: &PhaseRecord) -> String {
    format!(
        "    {{\"bucket\": {}, \"kind\": \"{:?}\", \"relaxations\": {}, \"remote_msgs\": {}}}",
        p.bucket, p.kind, p.relaxations, p.remote_msgs
    )
}

fn bucket_json(b: &BucketRecord) -> String {
    format!(
        "    {{\"bucket\": {}, \"mode\": \"{:?}\", \"settled\": {}, \"est_push\": {}, \
         \"est_pull\": {}, \"self_edges\": {}, \"backward_edges\": {}, \"forward_edges\": {}, \
         \"requests\": {}, \"responses\": {}, \"supersteps\": {}, \"local_msgs\": {}, \
         \"remote_msgs\": {}, \"coalesced_msgs\": {}}}",
        b.bucket,
        b.mode,
        b.settled,
        b.est_push,
        b.est_pull,
        b.self_edges,
        b.backward_edges,
        b.forward_edges,
        b.requests,
        b.responses,
        b.supersteps,
        b.local_msgs,
        b.remote_msgs,
        b.coalesced_msgs
    )
}

/// Per-field comparison of two bucket records with `prefix`-qualified
/// mismatch messages (so `trace_diff` output names the exact counter).
fn diff_bucket(prefix: &str, a: &BucketRecord, b: &BucketRecord, out: &mut Vec<String>) {
    let pairs: [(&str, u64, u64); 12] = [
        ("bucket", a.bucket, b.bucket),
        ("settled", a.settled, b.settled),
        ("est_push", a.est_push, b.est_push),
        ("est_pull", a.est_pull, b.est_pull),
        ("self_edges", a.self_edges, b.self_edges),
        ("backward_edges", a.backward_edges, b.backward_edges),
        ("forward_edges", a.forward_edges, b.forward_edges),
        ("requests", a.requests, b.requests),
        ("responses", a.responses, b.responses),
        ("supersteps", a.supersteps, b.supersteps),
        ("local_msgs", a.local_msgs, b.local_msgs),
        ("coalesced_msgs", a.coalesced_msgs, b.coalesced_msgs),
    ];
    if a.mode != b.mode {
        out.push(format!("{prefix}.mode: {:?} vs {:?}", a.mode, b.mode));
    }
    if a.remote_msgs != b.remote_msgs {
        out.push(format!(
            "{prefix}.remote_msgs: {} vs {}",
            a.remote_msgs, b.remote_msgs
        ));
    }
    for (name, x, y) in pairs {
        if x != y {
            out.push(format!("{prefix}.{name}: {x} vs {y}"));
        }
    }
}

// -- hand-rolled parsing helpers (for our own line-oriented output) --------

fn raw_value<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let at = text
        .find(&pat)
        .ok_or_else(|| format!("missing \"{key}\""))?;
    let rest = text[at + pat.len()..].trim_start();
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    Ok(rest[..end].trim())
}

fn parse_u64(raw: &str, key: &str) -> Result<u64, String> {
    raw.parse::<u64>()
        .map_err(|_| format!("\"{key}\": expected a number, got {raw:?}"))
}

fn num_value(text: &str, key: &str) -> Result<u64, String> {
    parse_u64(raw_value(text, key)?, key)
}

/// Like [`num_value`], but an absent key parses as 0 — used for the
/// timing fields, which [`RunTrace::to_json`] omits when all-zero.
fn num_value_or_zero(text: &str, key: &str) -> Result<u64, String> {
    match raw_value(text, key) {
        Ok(raw) => parse_u64(raw, key),
        Err(_) => Ok(0),
    }
}

fn str_value<'a>(text: &'a str, key: &str) -> Result<&'a str, String> {
    let raw = raw_value(text, key)?;
    raw.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("\"{key}\": expected a string, got {raw:?}"))
}

/// The record lines of the array opened by `opener` (each record occupies
/// exactly one line in our output; the closing `]` sits on its own line).
fn array_lines<'a>(text: &'a str, opener: &str) -> Result<Vec<&'a str>, String> {
    let at = text
        .find(opener)
        .ok_or_else(|| format!("missing {opener}"))?;
    let body = &text[at + opener.len()..];
    let mut lines = Vec::new();
    for line in body.lines() {
        let t = line.trim().trim_end_matches(',');
        if t.is_empty() {
            continue;
        }
        if t == "]" {
            return Ok(lines);
        }
        lines.push(line);
    }
    Err(format!("unterminated array {opener}"))
}

fn parse_phase_line(line: &str) -> Result<PhaseRecord, String> {
    let kind = match str_value(line, "kind")? {
        "Short" => PhaseKind::Short,
        "LongPush" => PhaseKind::LongPush,
        "LongPull" => PhaseKind::LongPull,
        "BellmanFord" => PhaseKind::BellmanFord,
        other => return Err(format!("unknown phase kind {other:?}")),
    };
    Ok(PhaseRecord {
        bucket: num_value(line, "bucket")?,
        kind,
        relaxations: num_value(line, "relaxations")?,
        remote_msgs: num_value(line, "remote_msgs")?,
    })
}

fn parse_bucket_line(line: &str) -> Result<BucketRecord, String> {
    let mode = match str_value(line, "mode")? {
        "Push" => LongPhaseMode::Push,
        "Pull" => LongPhaseMode::Pull,
        other => return Err(format!("unknown long-phase mode {other:?}")),
    };
    Ok(BucketRecord {
        bucket: num_value(line, "bucket")?,
        settled: num_value(line, "settled")?,
        mode,
        est_push: num_value(line, "est_push")?,
        est_pull: num_value(line, "est_pull")?,
        self_edges: num_value(line, "self_edges")?,
        backward_edges: num_value(line, "backward_edges")?,
        forward_edges: num_value(line, "forward_edges")?,
        requests: num_value(line, "requests")?,
        responses: num_value(line, "responses")?,
        supersteps: num_value(line, "supersteps")?,
        local_msgs: num_value(line, "local_msgs")?,
        remote_msgs: num_value(line, "remote_msgs")?,
        coalesced_msgs: num_value(line, "coalesced_msgs")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxation_total_sums_all_kinds() {
        let s = RunStats {
            short_relaxations: 10,
            outer_short_relaxations: 4,
            long_push_relaxations: 20,
            pull_requests: 7,
            pull_responses: 5,
            bf_relaxations: 3,
            ..Default::default()
        };
        assert_eq!(s.relaxations_total(), 49);
    }

    #[test]
    fn buckets_counts_hybrid_tail() {
        let mut s = RunStats {
            epochs: 4,
            ..Default::default()
        };
        assert_eq!(s.buckets(), 4);
        s.hybrid_switch_at = Some(3);
        assert_eq!(s.buckets(), 5);
    }

    #[test]
    fn per_thread_average() {
        let s = RunStats {
            short_relaxations: 100,
            num_ranks: 5,
            threads_per_rank: 2,
            ..Default::default()
        };
        assert!((s.relaxations_per_thread() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn gteps_zero_when_no_time() {
        let s = RunStats::default();
        assert_eq!(s.gteps(1000), 0.0);
    }

    #[test]
    fn supersteps_mirror_the_comm_ledger() {
        let mut s = RunStats::default();
        assert_eq!(s.supersteps(), 0);
        s.comm.record(sssp_comm::stats::StepStats {
            local_msgs: 1,
            ..Default::default()
        });
        s.comm.record(sssp_comm::stats::StepStats {
            remote_msgs: 2,
            ..Default::default()
        });
        assert_eq!(s.supersteps(), 2);
    }

    #[test]
    fn phases_csv_has_header_and_rows() {
        let s = RunStats {
            phase_records: vec![
                PhaseRecord {
                    bucket: 0,
                    kind: PhaseKind::Short,
                    relaxations: 5,
                    remote_msgs: 3,
                },
                PhaseRecord {
                    bucket: u64::MAX,
                    kind: PhaseKind::BellmanFord,
                    relaxations: 9,
                    remote_msgs: 7,
                },
            ],
            ..Default::default()
        };
        let csv = s.phases_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0,0,Short,5,3"));
        assert!(lines[2].contains("hybrid"));
    }

    fn sample_bucket() -> BucketRecord {
        BucketRecord {
            bucket: 2,
            settled: 10,
            mode: LongPhaseMode::Pull,
            est_push: 100,
            est_pull: 40,
            self_edges: 0,
            backward_edges: 0,
            forward_edges: 0,
            requests: 20,
            responses: 15,
            supersteps: 4,
            local_msgs: 9,
            remote_msgs: 31,
            coalesced_msgs: 6,
        }
    }

    #[test]
    fn buckets_csv_round_numbers() {
        let s = RunStats {
            bucket_records: vec![sample_bucket()],
            ..Default::default()
        };
        let csv = s.buckets_csv();
        assert!(csv.contains("2,10,Pull,100,40,0,0,0,20,15,4,9,31,6"));
    }

    #[test]
    fn buckets_csv_appends_hybrid_tail_row() {
        let mut tail = sample_bucket();
        tail.bucket = u64::MAX;
        let s = RunStats {
            bucket_records: vec![sample_bucket()],
            tail_record: Some(tail),
            ..Default::default()
        };
        let csv = s.buckets_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].starts_with("hybrid,"));
    }

    #[test]
    fn epoch_window_attributes_unconsumed_steps() {
        let mut s = RunStats::default();
        s.comm.record(sssp_comm::stats::StepStats {
            local_msgs: 3,
            remote_msgs: 5,
            coalesced_msgs: 1,
            ..Default::default()
        });
        s.comm.record(sssp_comm::stats::StepStats {
            local_msgs: 2,
            remote_msgs: 4,
            ..Default::default()
        });
        assert_eq!(s.epoch_window(), (2, 5, 9, 1));
        // Attribute both steps to a bucket record; the window empties.
        let mut rec = sample_bucket();
        rec.supersteps = 2;
        s.bucket_records.push(rec);
        assert_eq!(s.epoch_window(), (0, 0, 0, 0));
        // The tail record consumes steps too.
        s.comm.record(sssp_comm::stats::StepStats {
            remote_msgs: 7,
            ..Default::default()
        });
        assert_eq!(s.epoch_window(), (1, 0, 7, 0));
        let mut tail = sample_bucket();
        tail.supersteps = 1;
        s.tail_record = Some(tail);
        assert_eq!(s.epoch_window(), (0, 0, 0, 0));
    }

    fn sample_trace() -> RunTrace {
        let mut tail = sample_bucket();
        tail.bucket = u64::MAX;
        tail.mode = LongPhaseMode::Push;
        RunTrace {
            backend: "simulated".to_string(),
            ranks: 4,
            supersteps: 12,
            local_msgs: 30,
            remote_msgs: 70,
            remote_bytes: 1120,
            coalesced_msgs: 8,
            max_step_send_bytes: 96,
            max_step_recv_bytes: 80,
            hybrid_switch_at: Some(3),
            timings: PhaseTimings::default(),
            phases: vec![
                PhaseRecord {
                    bucket: 0,
                    kind: PhaseKind::Short,
                    relaxations: 5,
                    remote_msgs: 3,
                },
                PhaseRecord {
                    bucket: u64::MAX,
                    kind: PhaseKind::BellmanFord,
                    relaxations: 9,
                    remote_msgs: 7,
                },
            ],
            buckets: vec![sample_bucket()],
            tail: Some(tail),
        }
    }

    #[test]
    fn trace_json_roundtrips() {
        let t = sample_trace();
        let parsed = RunTrace::from_json(&t.to_json()).expect("roundtrip parse");
        assert_eq!(parsed, t);
        assert!(t.diff(&parsed).is_empty());
    }

    #[test]
    fn trace_json_roundtrips_timings_and_diff_ignores_them() {
        let mut t = sample_trace();
        t.timings = PhaseTimings {
            short_ns: 120,
            long_push_ns: 0,
            long_pull_ns: 44,
            bf_ns: 7,
        };
        let parsed = RunTrace::from_json(&t.to_json()).expect("roundtrip parse");
        assert_eq!(parsed, t);
        // Traces differing only in wall-clock timings still compare equal.
        let zeroed = sample_trace();
        assert!(t.diff(&zeroed).is_empty());
        // All-zero timings are omitted from the serialized form entirely.
        assert!(!zeroed.to_json().contains("short_ns"));
    }

    #[test]
    fn phase_timings_accumulate_and_max() {
        let mut a = PhaseTimings::default();
        a.add(PhaseKind::Short, 10);
        a.add(PhaseKind::Short, 5);
        a.add(PhaseKind::BellmanFord, 3);
        let mut b = PhaseTimings::default();
        b.add(PhaseKind::Short, 9);
        b.add(PhaseKind::LongPull, 2);
        let m = a.max(&b);
        assert_eq!(m.short_ns, 15);
        assert_eq!(m.long_pull_ns, 2);
        assert_eq!(m.bf_ns, 3);
        assert_eq!(m.long_push_ns, 0);
        assert!(!m.is_zero());
        assert!(PhaseTimings::default().is_zero());
    }

    #[test]
    fn trace_json_roundtrips_without_optionals() {
        let mut t = sample_trace();
        t.hybrid_switch_at = None;
        t.tail = None;
        t.phases.clear();
        t.buckets.clear();
        let parsed = RunTrace::from_json(&t.to_json()).expect("roundtrip parse");
        assert_eq!(parsed, t);
    }

    #[test]
    fn trace_diff_ignores_backend_but_flags_counters() {
        let a = sample_trace();
        let mut b = sample_trace();
        b.backend = "threaded".to_string();
        assert!(a.diff(&b).is_empty(), "backend label must not diff");
        b.remote_msgs += 1;
        b.buckets[0].est_pull = 41;
        b.tail = None;
        let d = a.diff(&b);
        assert_eq!(d.len(), 3, "unexpected diff: {d:?}");
        assert!(d.iter().any(|l| l.starts_with("remote_msgs:")));
        assert!(d.iter().any(|l| l.starts_with("buckets[0].est_pull:")));
        assert!(d.iter().any(|l| l.starts_with("tail presence:")));
    }

    #[test]
    fn malformed_trace_is_rejected() {
        assert!(RunTrace::from_json("{}").is_err());
        let t = sample_trace().to_json();
        let broken = t.replace("\"supersteps\": 12", "\"supersteps\": twelve");
        assert!(RunTrace::from_json(&broken).is_err());
    }
}
