//! Run instrumentation: every count the paper's figures are built from.

use sssp_comm::cost::TimeLedger;
use sssp_comm::stats::CommStats;

use crate::config::LongPhaseMode;

/// What kind of superstep a phase record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// A short-edge phase of some bucket.
    Short,
    /// A push-mode long-edge phase.
    LongPush,
    /// A pull-mode long-edge phase (requests + responses).
    LongPull,
    /// A Bellman-Ford phase of the hybrid tail.
    BellmanFord,
}

/// One relaxation superstep (Fig. 4 plots these in sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseRecord {
    /// Bucket being processed (`u64::MAX` for the hybrid tail).
    pub bucket: u64,
    /// Which kind of phase this record covers.
    pub kind: PhaseKind,
    /// Relaxation messages generated (requests + responses for pull).
    pub relaxations: u64,
    /// Cross-rank messages.
    pub remote_msgs: u64,
}

/// Per-processed-bucket record (Fig. 7 and the §IV-G validation read these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketRecord {
    /// Bucket index k this epoch processed.
    pub bucket: u64,
    /// Vertices settled by this bucket (global).
    pub settled: u64,
    /// Mechanism used for the long-edge phase.
    pub mode: LongPhaseMode,
    /// Estimated volumes the decision heuristic compared.
    pub est_push: u64,
    /// Estimated pull volume used by the decision heuristic.
    pub est_pull: u64,
    /// Push-mode receiver-side classification (§III-B): targets already in
    /// the current bucket / an earlier bucket / a later bucket. Zero when
    /// the bucket ran in pull mode.
    pub self_edges: u64,
    /// Edges scanned backward (pull candidates examined).
    pub backward_edges: u64,
    /// Edges scanned forward (push relaxations attempted).
    pub forward_edges: u64,
    /// Pull-mode traffic. Zero when the bucket ran in push mode.
    pub requests: u64,
    /// Pull responses sent back to requesters.
    pub responses: u64,
}

/// Aggregated statistics of one SSSP run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Buckets processed by Δ-stepping epochs (the hybrid tail, if any,
    /// counts as one more — see [`Self::buckets`]).
    pub epochs: u64,
    /// Total relaxation supersteps (short + long + Bellman-Ford phases).
    pub phases: u64,
    /// Bucket index at which hybridization switched to Bellman-Ford.
    pub hybrid_switch_at: Option<u64>,

    /// Relaxations performed in short-edge phases.
    pub short_relaxations: u64,
    /// Outer short edges deferred to the long phase by IOS.
    pub outer_short_relaxations: u64,
    /// Relaxations performed in long push phases.
    pub long_push_relaxations: u64,
    /// Pull requests issued.
    pub pull_requests: u64,
    /// Pull responses received.
    pub pull_responses: u64,
    /// Relaxations performed in Bellman-Ford tail phases.
    pub bf_relaxations: u64,

    /// Vertices with a finite final distance.
    pub reachable: u64,

    /// One record per phase, in execution order.
    pub phase_records: Vec<PhaseRecord>,
    /// One record per processed bucket.
    pub bucket_records: Vec<BucketRecord>,

    /// Message traffic ledger.
    pub comm: CommStats,
    /// Simulated time ledger.
    pub ledger: TimeLedger,

    /// Ranks and threads the run was simulated with (for per-thread stats).
    pub num_ranks: usize,
    /// Logical threads per rank.
    pub threads_per_rank: usize,
}

impl RunStats {
    /// Total relaxation operations under the paper's accounting: pull
    /// requests and responses each count once ("contributing two times" per
    /// relaxed edge).
    pub fn relaxations_total(&self) -> u64 {
        self.short_relaxations
            + self.outer_short_relaxations
            + self.long_push_relaxations
            + self.pull_requests
            + self.pull_responses
            + self.bf_relaxations
    }

    /// Buckets including the hybrid tail's merged bucket (Fig 10d metric).
    pub fn buckets(&self) -> u64 {
        self.epochs + u64::from(self.hybrid_switch_at.is_some())
    }

    /// Data-exchange supersteps recorded by the comm layer — the
    /// denominator of `perf_baseline`'s allocations-per-superstep metric.
    pub fn supersteps(&self) -> u64 {
        self.comm.num_supersteps() as u64
    }

    /// Average relaxations per thread (Fig 10c metric).
    pub fn relaxations_per_thread(&self) -> f64 {
        let t = (self.num_ranks * self.threads_per_rank).max(1) as f64;
        self.relaxations_total() as f64 / t
    }

    /// Simulated GTEPS for an input edge count `m`.
    pub fn gteps(&self, m_edges: u64) -> f64 {
        sssp_comm::cost::teps(m_edges, self.ledger.total_s()) / 1e9
    }

    /// Dump the per-phase series (the data behind Fig. 4) as CSV.
    pub fn phases_csv(&self) -> String {
        let mut out = String::from("phase,bucket,kind,relaxations,remote_msgs\n");
        for (i, r) in self.phase_records.iter().enumerate() {
            let bucket = if r.bucket == u64::MAX {
                "hybrid".to_string()
            } else {
                r.bucket.to_string()
            };
            out.push_str(&format!(
                "{},{},{:?},{},{}\n",
                i, bucket, r.kind, r.relaxations, r.remote_msgs
            ));
        }
        out
    }

    /// Dump the per-bucket series (the data behind Fig. 7) as CSV.
    pub fn buckets_csv(&self) -> String {
        let mut out = String::from(
            "bucket,settled,mode,est_push,est_pull,self,backward,forward,requests,responses\n",
        );
        for r in &self.bucket_records {
            out.push_str(&format!(
                "{},{},{:?},{},{},{},{},{},{},{}\n",
                r.bucket,
                r.settled,
                r.mode,
                r.est_push,
                r.est_pull,
                r.self_edges,
                r.backward_edges,
                r.forward_edges,
                r.requests,
                r.responses
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxation_total_sums_all_kinds() {
        let s = RunStats {
            short_relaxations: 10,
            outer_short_relaxations: 4,
            long_push_relaxations: 20,
            pull_requests: 7,
            pull_responses: 5,
            bf_relaxations: 3,
            ..Default::default()
        };
        assert_eq!(s.relaxations_total(), 49);
    }

    #[test]
    fn buckets_counts_hybrid_tail() {
        let mut s = RunStats {
            epochs: 4,
            ..Default::default()
        };
        assert_eq!(s.buckets(), 4);
        s.hybrid_switch_at = Some(3);
        assert_eq!(s.buckets(), 5);
    }

    #[test]
    fn per_thread_average() {
        let s = RunStats {
            short_relaxations: 100,
            num_ranks: 5,
            threads_per_rank: 2,
            ..Default::default()
        };
        assert!((s.relaxations_per_thread() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn gteps_zero_when_no_time() {
        let s = RunStats::default();
        assert_eq!(s.gteps(1000), 0.0);
    }

    #[test]
    fn supersteps_mirror_the_comm_ledger() {
        let mut s = RunStats::default();
        assert_eq!(s.supersteps(), 0);
        s.comm.record(sssp_comm::stats::StepStats {
            local_msgs: 1,
            ..Default::default()
        });
        s.comm.record(sssp_comm::stats::StepStats {
            remote_msgs: 2,
            ..Default::default()
        });
        assert_eq!(s.supersteps(), 2);
    }

    #[test]
    fn phases_csv_has_header_and_rows() {
        let s = RunStats {
            phase_records: vec![
                PhaseRecord {
                    bucket: 0,
                    kind: PhaseKind::Short,
                    relaxations: 5,
                    remote_msgs: 3,
                },
                PhaseRecord {
                    bucket: u64::MAX,
                    kind: PhaseKind::BellmanFord,
                    relaxations: 9,
                    remote_msgs: 7,
                },
            ],
            ..Default::default()
        };
        let csv = s.phases_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0,0,Short,5,3"));
        assert!(lines[2].contains("hybrid"));
    }

    #[test]
    fn buckets_csv_round_numbers() {
        let s = RunStats {
            bucket_records: vec![BucketRecord {
                bucket: 2,
                settled: 10,
                mode: LongPhaseMode::Pull,
                est_push: 100,
                est_pull: 40,
                self_edges: 0,
                backward_edges: 0,
                forward_edges: 0,
                requests: 20,
                responses: 15,
            }],
            ..Default::default()
        };
        let csv = s.buckets_csv();
        assert!(csv.contains("2,10,Pull,100,40,0,0,0,20,15"));
    }
}
