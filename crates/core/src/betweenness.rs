//! Betweenness centrality on top of the SSSP engine.
//!
//! The paper motivates SSSP with complex-network analysis — Brandes'
//! betweenness algorithm [1] and Freeman's centrality [2] are its first two
//! citations. This module provides that downstream application: Brandes'
//! dependency accumulation driven by the distributed SSSP engine, with
//! source sampling for the approximate variant used on large graphs.
//!
//! For each source `s`, the shortest-path DAG is derived from the distance
//! array (edge `(u, v)` is a DAG edge iff `d(u) + w = d(v)`), path counts
//! `σ` accumulate in increasing-distance order, and dependencies
//!
//! ```text
//!   δ(v) = Σ_{w : v ∈ pred(w)} σ(v)/σ(w) · (1 + δ(w))
//! ```
//!
//! accumulate in decreasing-distance order. Exact betweenness uses every
//! vertex as a source; sampling `k` sources scales each contribution by
//! `n/k` (Brandes–Pich estimation).

use sssp_comm::cost::MachineModel;
use sssp_dist::DistGraph;
use sssp_graph::{Csr, VertexId};

use crate::config::SsspConfig;
use crate::engine::run_sssp;
use crate::state::INF;

/// Accumulate one source's dependencies into `centrality`, scaled by
/// `scale`. Returns the number of reachable vertices.
fn accumulate_source(
    g: &Csr,
    source: VertexId,
    dist: &[u64],
    centrality: &mut [f64],
    scale: f64,
) -> usize {
    let n = g.num_vertices();
    // Vertices in increasing distance order (unreachable excluded).
    let mut order: Vec<VertexId> = g.vertices().filter(|&v| dist[v as usize] != INF).collect();
    order.sort_unstable_by_key(|&v| dist[v as usize]);

    // σ: number of shortest s→v paths.
    let mut sigma = vec![0.0f64; n];
    sigma[source as usize] = 1.0;
    for &v in &order {
        if v == source {
            continue;
        }
        let dv = dist[v as usize];
        let mut s = 0.0;
        for (u, w) in g.row(v) {
            if dist[u as usize].saturating_add(w as u64) == dv {
                s += sigma[u as usize];
            }
        }
        sigma[v as usize] = s;
    }

    // δ: dependency accumulation in reverse order.
    let mut delta = vec![0.0f64; n];
    for &w_v in order.iter().rev() {
        let dw = dist[w_v as usize];
        if sigma[w_v as usize] == 0.0 {
            continue;
        }
        for (u, wt) in g.row(w_v) {
            if dist[u as usize].saturating_add(wt as u64) == dw && sigma[u as usize] > 0.0 {
                delta[u as usize] +=
                    sigma[u as usize] / sigma[w_v as usize] * (1.0 + delta[w_v as usize]);
            }
        }
        if w_v != source {
            centrality[w_v as usize] += scale * delta[w_v as usize];
        }
    }
    order.len()
}

/// Approximate betweenness from `sources`, computing each SSSP on the
/// distributed engine. Contributions are scaled by `n / |sources|`.
pub fn betweenness_sampled(
    g: &Csr,
    dg: &DistGraph,
    sources: &[VertexId],
    cfg: &SsspConfig,
    model: &MachineModel,
) -> Vec<f64> {
    assert!(!sources.is_empty(), "need at least one source");
    let n = g.num_vertices();
    let scale = n as f64 / sources.len() as f64;
    let mut centrality = vec![0.0; n];
    for &s in sources {
        let out = run_sssp(dg, s, cfg, model);
        accumulate_source(g, s, &out.distances, &mut centrality, scale);
    }
    centrality
}

/// Exact betweenness (every vertex a source), using sequential Dijkstra for
/// the distance arrays. Reference implementation for tests and small
/// graphs; undirected convention (each pair counted from both endpoints, so
/// values are 2× the "divide by two" convention).
pub fn betweenness_exact(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    let mut centrality = vec![0.0; n];
    for s in g.vertices() {
        let dist = crate::seq::dijkstra(g, s);
        accumulate_source(g, s, &dist, &mut centrality, 1.0);
    }
    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssp_graph::{gen, CsrBuilder, EdgeList};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn path_graph_centrality() {
        // Path 0-1-2-3-4: vertex 2 lies on the most shortest paths.
        let g = CsrBuilder::new().build(&gen::path(5, 1));
        let c = betweenness_exact(&g);
        // Endpoints have zero centrality.
        assert!(close(c[0], 0.0) && close(c[4], 0.0));
        // v1 is interior to s-t pairs: (0,2),(0,3),(0,4) and reversed = 6.
        assert!(close(c[1], 6.0), "c[1] = {}", c[1]);
        assert!(close(c[2], 8.0), "c[2] = {}", c[2]);
        assert!(close(c[3], 6.0), "c[3] = {}", c[3]);
    }

    #[test]
    fn star_center_dominates() {
        let g = CsrBuilder::new().build(&gen::star(7, 2));
        let c = betweenness_exact(&g);
        // Center mediates every leaf pair: 6·5 = 30 ordered pairs.
        assert!(close(c[0], 30.0), "center = {}", c[0]);
        for &leaf_c in &c[1..7] {
            assert!(close(leaf_c, 0.0));
        }
    }

    #[test]
    fn equal_weight_paths_split_credit() {
        // A diamond: 0-1-3 and 0-2-3 with equal weights; 1 and 2 each carry
        // half of the (0,3) pairs.
        let mut el = EdgeList::new(4);
        el.push(0, 1, 1);
        el.push(0, 2, 1);
        el.push(1, 3, 1);
        el.push(2, 3, 1);
        let g = CsrBuilder::new().build(&el);
        let c = betweenness_exact(&g);
        assert!(close(c[1], 1.0), "c[1] = {}", c[1]);
        assert!(close(c[2], 1.0), "c[2] = {}", c[2]);
        assert!(close(c[0], 1.0) && close(c[3], 1.0));
    }

    #[test]
    fn weights_shift_shortest_paths() {
        // Same diamond but the 0-1-3 route is cheaper: vertex 1 takes all
        // the credit.
        let mut el = EdgeList::new(4);
        el.push(0, 1, 1);
        el.push(0, 2, 5);
        el.push(1, 3, 1);
        el.push(2, 3, 5);
        let g = CsrBuilder::new().build(&el);
        let c = betweenness_exact(&g);
        assert!(close(c[1], 2.0), "c[1] = {}", c[1]);
        assert!(close(c[2], 0.0), "c[2] = {}", c[2]);
    }

    #[test]
    fn sampled_with_all_sources_equals_exact() {
        let g = CsrBuilder::new().build(&gen::uniform(40, 160, 10, 5));
        let dg = DistGraph::build(&g, 3, 2);
        let sources: Vec<u32> = g.vertices().collect();
        let sampled = betweenness_sampled(
            &g,
            &dg,
            &sources,
            &SsspConfig::opt(25),
            &MachineModel::bgq_like(),
        );
        let exact = betweenness_exact(&g);
        for v in 0..40 {
            assert!(
                (sampled[v] - exact[v]).abs() < 1e-6,
                "v{v}: {} vs {}",
                sampled[v],
                exact[v]
            );
        }
    }

    #[test]
    fn sampling_scales_contributions() {
        let g = CsrBuilder::new().build(&gen::path(6, 1));
        let dg = DistGraph::build(&g, 2, 1);
        // One source out of six: scale factor 6.
        let c = betweenness_sampled(
            &g,
            &dg,
            &[0],
            &SsspConfig::opt(25),
            &MachineModel::bgq_like(),
        );
        // From source 0 alone, δ(1) = 4 (it precedes 2,3,4,5), scaled by 6.
        assert!(close(c[1], 24.0), "c[1] = {}", c[1]);
    }

    #[test]
    fn disconnected_components_are_independent() {
        let mut el = gen::path(3, 1); // 0-1-2
        el.n = 6;
        el.push(3, 4, 1);
        el.push(4, 5, 1); // 3-4-5
        let g = CsrBuilder::new().build(&el);
        let c = betweenness_exact(&g);
        assert!(close(c[1], 2.0));
        assert!(close(c[4], 2.0));
        assert!(close(c[0], 0.0) && close(c[3], 0.0));
    }
}
