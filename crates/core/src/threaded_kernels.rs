//! Kernels on the real-thread backend ([`sssp_comm::threaded`]).
//!
//! These run the same bulk-synchronous programs as the simulated engine,
//! but with one OS thread per rank and messages moving through channels —
//! no shared state. The test suite asserts they produce results identical
//! to the simulated kernels, which is the evidence that the simulator's
//! semantics (source-ordered delivery, superstep barriers, collectives)
//! faithfully model a real distributed execution.
//!
//! Two kernels are ported: Bellman-Ford SSSP (the message pattern of the
//! engine's hybrid tail) and min-label connected components. The full
//! Δ-stepping algorithm on this backend lives in
//! [`crate::engine::threaded`]; like it, both kernels coalesce each
//! outbox lane (min per target) before the exchange — the messages are
//! min-reductions, so dropping dominated duplicates cannot change any
//! result.

use std::sync::Arc;

use sssp_comm::exchange::coalesce_lane_min;
use sssp_comm::threaded::{run_threaded, RankCtx};
use sssp_dist::DistGraph;
use sssp_graph::VertexId;

use crate::state::INF;

/// Distributed Bellman-Ford on OS threads. Returns the distance array
/// (global vertex order).
pub fn threaded_bellman_ford(dg: &Arc<DistGraph>, root: VertexId) -> Vec<u64> {
    let p = dg.num_ranks();
    assert!((root as usize) < dg.num_vertices());
    let dg_outer = Arc::clone(dg);
    let dgc = Arc::clone(dg);

    let per_rank: Vec<Vec<u64>> = run_threaded(p, move |mut ctx: RankCtx<(u32, u64)>| {
        let dg = &dgc;
        let r = ctx.rank();
        let lg = &dg.locals[r];
        let mut dist = vec![INF; lg.num_local()];
        let mut active: Vec<u32> = Vec::new();
        if dg.part.owner(root) == r {
            dist[dg.part.to_local(root)] = 0;
            active.push(dg.part.to_local(root) as u32);
        }
        // Superstep scratch, hoisted so capacity survives across rounds
        // (mirrors the simulated engine's pooled buffers).
        let mut out: Vec<Vec<(u32, u64)>> = (0..ctx.num_ranks()).map(|_| Vec::new()).collect();
        let mut inbox: Vec<(u32, u64)> = Vec::new();
        let mut changed: Vec<u32> = Vec::new();
        let mut seen = vec![false; dist.len()];
        loop {
            if !ctx.any(!active.is_empty()) {
                break;
            }
            for &u in &active {
                let du = dist[u as usize];
                let (ts, ws) = lg.row(u as usize);
                for i in 0..ts.len() {
                    out[dg.part.owner(ts[i])]
                        .push((dg.part.to_local(ts[i]) as u32, du + ws[i] as u64));
                }
            }
            for lane in out.iter_mut() {
                coalesce_lane_min(lane, |m| m.0, |m| m.1);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            for &(t, nd) in &inbox {
                let ti = t as usize;
                if nd < dist[ti] {
                    dist[ti] = nd;
                    if !seen[ti] {
                        seen[ti] = true;
                        changed.push(t);
                    }
                }
            }
            // Reset only the flags set this round, then promote the changed
            // set to the next frontier (the swap keeps both capacities).
            for &t in &changed {
                seen[t as usize] = false;
            }
            std::mem::swap(&mut active, &mut changed);
            changed.clear();
        }
        dist
    });

    let mut global = vec![INF; dg_outer.num_vertices()];
    for (r, d) in per_rank.iter().enumerate() {
        for (l, &x) in d.iter().enumerate() {
            global[dg_outer.part.to_global(r, l) as usize] = x;
        }
    }
    global
}

/// Distributed min-label connected components on OS threads. Returns the
/// label array (global vertex order).
pub fn threaded_cc(dg: &Arc<DistGraph>) -> Vec<VertexId> {
    let p = dg.num_ranks();
    let dg_outer = Arc::clone(dg);
    let dgc = Arc::clone(dg);

    let per_rank: Vec<Vec<VertexId>> = run_threaded(p, move |mut ctx: RankCtx<(u32, u32)>| {
        let dg = &dgc;
        let r = ctx.rank();
        let lg = &dg.locals[r];
        let mut labels: Vec<VertexId> = (0..lg.num_local())
            .map(|l| dg.part.to_global(r, l))
            .collect();
        let mut active: Vec<u32> = (0..lg.num_local() as u32).collect();
        let mut out: Vec<Vec<(u32, u32)>> = (0..ctx.num_ranks()).map(|_| Vec::new()).collect();
        let mut inbox: Vec<(u32, u32)> = Vec::new();
        let mut changed: Vec<u32> = Vec::new();
        let mut seen = vec![false; labels.len()];
        loop {
            if !ctx.any(!active.is_empty()) {
                break;
            }
            for &v in &active {
                let (ts, _) = lg.row(v as usize);
                for &t in ts {
                    out[dg.part.owner(t)].push((dg.part.to_local(t) as u32, labels[v as usize]));
                }
            }
            for lane in out.iter_mut() {
                coalesce_lane_min(lane, |m| m.0, |m| m.1);
            }
            ctx.exchange_pooled(&mut out, &mut inbox);
            for &(t, label) in &inbox {
                let ti = t as usize;
                if label < labels[ti] {
                    labels[ti] = label;
                    if !seen[ti] {
                        seen[ti] = true;
                        changed.push(t);
                    }
                }
            }
            for &t in &changed {
                seen[t as usize] = false;
            }
            std::mem::swap(&mut active, &mut changed);
            changed.clear();
        }
        labels
    });

    let mut global = vec![0 as VertexId; dg_outer.num_vertices()];
    for (r, lab) in per_rank.iter().enumerate() {
        for (l, &x) in lab.iter().enumerate() {
            global[dg_outer.part.to_global(r, l) as usize] = x;
        }
    }
    global
}

#[cfg(test)]
mod tests {
    use super::*;
    use sssp_comm::cost::MachineModel;
    use sssp_graph::{gen, CsrBuilder};

    #[test]
    fn threaded_bf_matches_sequential_dijkstra() {
        for seed in 0..4 {
            let g = CsrBuilder::new().build(&gen::uniform(120, 700, 30, seed));
            let expect = crate::seq::dijkstra(&g, 0);
            for p in [1usize, 3, 6] {
                let dg = Arc::new(DistGraph::build(&g, p, 1));
                let got = threaded_bellman_ford(&dg, 0);
                assert_eq!(got, expect, "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn threaded_bf_matches_simulated_engine() {
        let g = CsrBuilder::new().build(&gen::uniform(200, 1200, 40, 9));
        let dg = Arc::new(DistGraph::build(&g, 5, 2));
        let simulated = crate::engine::run_sssp(
            &dg,
            0,
            &crate::SsspConfig::bellman_ford(),
            &MachineModel::bgq_like(),
        );
        let threaded = threaded_bellman_ford(&dg, 0);
        assert_eq!(threaded, simulated.distances);
    }

    #[test]
    fn threaded_cc_matches_simulated_cc() {
        let g = CsrBuilder::new().build(&gen::uniform(150, 200, 10, 3));
        let dg = Arc::new(DistGraph::build(&g, 4, 2));
        let simulated = crate::cc::run_cc(&dg, &MachineModel::bgq_like());
        let threaded = threaded_cc(&dg);
        assert_eq!(threaded, simulated.labels);
    }

    #[test]
    fn threaded_runs_are_deterministic() {
        // True concurrency must not leak into results: repeat runs agree.
        let g = CsrBuilder::new().build(&gen::uniform(180, 900, 25, 5));
        let dg = Arc::new(DistGraph::build(&g, 6, 1));
        let a = threaded_bellman_ford(&dg, 3);
        for _ in 0..3 {
            assert_eq!(threaded_bellman_ford(&dg, 3), a);
        }
    }

    #[test]
    fn threaded_cc_on_disconnected_graph() {
        let mut el = gen::path(4, 1);
        el.n = 7;
        el.push(5, 6, 1);
        let g = CsrBuilder::new().build(&el);
        let dg = Arc::new(DistGraph::build(&g, 3, 1));
        let labels = threaded_cc(&dg);
        assert_eq!(labels, vec![0, 0, 0, 0, 4, 5, 5]);
    }
}
