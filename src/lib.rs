//! # sssp-mps
//!
//! A from-scratch Rust reproduction of *Scalable Single Source Shortest Path
//! Algorithms for Massively Parallel Systems* (Chakaravarthy, Checconi,
//! Petrini, Sabharwal — IPDPS 2014).
//!
//! The paper's engine — Δ-stepping augmented with edge classification, the
//! inner/outer-short (IOS) refinement, push/pull direction-optimized pruning,
//! Bellman-Ford hybridization and two-tier load balancing — runs here on a
//! simulated distributed-memory machine (logical ranks with bulk-synchronous
//! message exchange and an α–β–γ cost model standing in for Blue Gene/Q).
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`graph`] — CSR graphs, R-MAT / Chung–Lu generators, degree stats.
//! * [`comm`] — the simulated distributed runtime and machine cost model.
//! * [`dist`] — distributed graphs: partitioning, thread ownership, splitting.
//! * [`core`] — the SSSP algorithms themselves.
//!
//! ## Quickstart
//!
//! ```
//! use sssp_mps::prelude::*;
//!
//! // A scale-10 RMAT-1 graph (Graph 500 BFS spec), 16 edges per vertex.
//! let el = RmatGenerator::new(RmatParams::RMAT1, 10, 16).seed(1).generate_weighted(255);
//! let csr = CsrBuilder::new().build(&el);
//!
//! // Distribute over 4 simulated ranks with 4 logical threads each.
//! let dg = DistGraph::build(&csr, 4, 4);
//!
//! // Run the paper's OPT algorithm (Δ = 25) from root 0.
//! let out = run_sssp(&dg, 0, &SsspConfig::opt(25), &MachineModel::bgq_like());
//! println!("settled {} vertices in {} buckets, {} phases",
//!          out.reachable(), out.stats.epochs, out.stats.phases);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sssp_comm as comm;
pub use sssp_core as core;
pub use sssp_dist as dist;
pub use sssp_graph as graph;

/// Most-used items in one import.
pub mod prelude {
    pub use sssp_comm::cost::MachineModel;
    pub use sssp_core::config::{DeltaParam, DirectionPolicy, SsspConfig};
    pub use sssp_core::engine::threaded::{threaded_delta_stepping, ThreadedSsspOutput};
    pub use sssp_core::engine::{run_sssp, run_sssp_multi, run_sssp_seeded, SsspOutput};
    pub use sssp_core::instrument::RunStats;
    pub use sssp_core::seq;
    pub use sssp_dist::DistGraph;
    pub use sssp_graph::rmat::{RmatGenerator, RmatParams};
    pub use sssp_graph::{Csr, CsrBuilder, EdgeList};
}
