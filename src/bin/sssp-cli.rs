//! Command-line driver for the library.
//!
//! ```text
//! sssp-cli run      --family rmat1 --scale 14 --ranks 16 --algo opt \
//!                   --delta 25 --roots 4 --validate        # run an algorithm
//! sssp-cli generate --family rmat2 --scale 12 --out g.gr   # write DIMACS
//! sssp-cli convert  --in g.gr --out g.bin                  # DIMACS ↔ binary
//! sssp-cli inspect  --in g.gr                              # graph statistics
//! ```
//!
//! `run` without a subcommand is the default for backward compatibility.

use sssp_mps::core::bfs::run_bfs;
use sssp_mps::core::config::{IntraBalance, SteppingPolicyKind};
use sssp_mps::graph::social::social_preset;
use sssp_mps::graph::{io, stats};
use sssp_mps::prelude::*;

#[derive(Debug)]
struct Args {
    family: String,
    scale: u32,
    edge_factor: usize,
    ranks: usize,
    threads: usize,
    algo: String,
    delta: u32,
    policy: String,
    rho: u32,
    roots: usize,
    seed: u64,
    validate: bool,
    split: bool,
    input: Option<String>,
    output: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            family: "rmat1".into(),
            scale: 14,
            edge_factor: 16,
            ranks: 8,
            threads: 4,
            algo: "opt".into(),
            delta: 25,
            policy: "delta".into(),
            rho: 2048,
            roots: 1,
            seed: 1,
            validate: false,
            split: false,
            input: None,
            output: None,
        }
    }
}

fn parse_args(argv: Vec<String>) -> Result<Args, String> {
    let mut args = Args::default();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--family" => args.family = value(&mut i)?,
            "--scale" => args.scale = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--edge-factor" => {
                args.edge_factor = value(&mut i)?.parse().map_err(|e| format!("{e}"))?
            }
            "--ranks" => args.ranks = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => args.threads = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--algo" => args.algo = value(&mut i)?,
            "--delta" => args.delta = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--policy" => args.policy = value(&mut i)?,
            "--rho" => args.rho = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--roots" => args.roots = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--validate" => args.validate = true,
            "--split" => args.split = true,
            "--in" => args.input = Some(value(&mut i)?),
            "--out" => args.output = Some(value(&mut i)?),
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn print_help() {
    println!(
        "sssp-cli — distributed SSSP on a simulated massively parallel machine

USAGE: sssp-cli [run|generate|convert|inspect] [OPTIONS]

SUBCOMMANDS:
  run        run an algorithm on a generated or loaded graph (default)
  generate   generate a graph and write it (--out, .gr or .bin by extension)
  convert    convert between DIMACS .gr and the binary format (--in/--out)
  inspect    print statistics of a graph file (--in)

OPTIONS:
  --in <FILE>        input graph file (.gr or .bin); replaces --family for run
  --out <FILE>       output graph file for generate/convert
  --family <rmat1|rmat2|uniform|friendster|orkut|livejournal>  graph family (default rmat1)
  --scale <N>        log2 of the vertex count for R-MAT/uniform (default 14)
  --edge-factor <K>  edges per vertex (default 16)
  --ranks <P>        simulated ranks (default 8)
  --threads <T>      logical threads per rank (default 4)
  --algo <A>         dijkstra | bellman-ford | del | ios | prune | opt | lb-opt | bfs (default opt)
  --delta <D>        Δ parameter for the Δ-stepping family (default 25)
  --policy <P>       stepping policy: delta | rho | radius (default delta);
                     rho extracts ≈ρ closest vertices per epoch, radius uses
                     per-vertex radii (the ρ-th smallest incident weight)
  --rho <N>          ρ parameter for the rho/radius policies (default 2048)
  --roots <K>        number of random roots to run (default 1)
  --seed <S>         generator seed (default 1)
  --split            arm the §III-E degree-threshold splitting trigger:
                     vertices above π′ are split into proxies before
                     distribution (no-op when the graph is mild)
  --validate         check every run against sequential Dijkstra/BFS"
    );
}

fn build_graph(args: &Args) -> Csr {
    match args.family.as_str() {
        "rmat1" | "rmat2" => {
            let params = if args.family == "rmat1" {
                RmatParams::RMAT1
            } else {
                RmatParams::RMAT2
            };
            let el = RmatGenerator::new(params, args.scale, args.edge_factor)
                .seed(args.seed)
                .generate_weighted(255);
            CsrBuilder::new().build(&el)
        }
        "uniform" => {
            let n = 1usize << args.scale;
            let el = sssp_mps::graph::gen::uniform(n, args.edge_factor * n, 255, args.seed);
            CsrBuilder::new().build(&el)
        }
        name => {
            let gen = social_preset(name, 1024)
                .unwrap_or_else(|| panic!("unknown family '{name}' (see --help)"));
            CsrBuilder::new().build(&gen.seed(args.seed).generate())
        }
    }
}

fn config_for(args: &Args) -> SsspConfig {
    let cfg = match args.algo.as_str() {
        "dijkstra" => SsspConfig::dijkstra(),
        "bellman-ford" | "bf" => SsspConfig::bellman_ford(),
        "del" => SsspConfig::del(args.delta),
        "ios" => SsspConfig::del(args.delta).with_ios(true),
        "prune" => SsspConfig::prune(args.delta),
        "opt" => SsspConfig::opt(args.delta),
        "lb-opt" => SsspConfig::opt(args.delta).with_intra_balance(IntraBalance::Auto),
        other => panic!("unknown algorithm '{other}' (see --help)"),
    };
    match args.policy.as_str() {
        "delta" => cfg,
        "rho" => cfg.with_policy(SteppingPolicyKind::Rho(args.rho)),
        "radius" => cfg.with_policy(SteppingPolicyKind::Radius(args.rho)),
        other => panic!("unknown policy '{other}' (see --help)"),
    }
}

fn load_edge_list(path: &str) -> EdgeList {
    let file = std::fs::File::open(path).unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
    if path.ends_with(".bin") {
        let mut reader = std::io::BufReader::new(file);
        io::read_binary(&mut reader).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
    } else {
        io::read_dimacs(std::io::BufReader::new(file), false)
            .unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
    }
}

fn store_edge_list(path: &str, el: &EdgeList) {
    let file = std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    let mut w = std::io::BufWriter::new(file);
    if path.ends_with(".bin") {
        io::write_binary(&mut w, el).expect("write failed");
    } else {
        io::write_dimacs(&mut w, el).expect("write failed");
    }
}

fn source_edge_list(args: &Args) -> EdgeList {
    match &args.input {
        Some(path) => load_edge_list(path),
        None => {
            // Re-generate via the family options and decompose the CSR back
            // into an edge list for writing.
            let csr = build_graph(args);
            let mut el = EdgeList::new(csr.num_vertices());
            for (u, v, w) in csr.undirected_edges() {
                el.push(u, v, w);
            }
            el
        }
    }
}

fn cmd_generate(args: &Args) {
    let el = source_edge_list(args);
    let out = args.output.as_deref().expect("generate requires --out");
    store_edge_list(out, &el);
    println!("wrote {} vertices, {} edges to {out}", el.n, el.len());
}

fn cmd_convert(args: &Args) {
    let input = args.input.as_deref().expect("convert requires --in");
    let out = args.output.as_deref().expect("convert requires --out");
    let el = load_edge_list(input);
    store_edge_list(out, &el);
    println!(
        "converted {input} → {out} ({} vertices, {} edges)",
        el.n,
        el.len()
    );
}

fn cmd_inspect(args: &Args) {
    let input = args.input.as_deref().expect("inspect requires --in");
    let el = load_edge_list(input);
    let csr = CsrBuilder::new().build(&el);
    let st = stats::degree_stats(&csr);
    let labels = sssp_mps::graph::components::components_bfs(&csr);
    let (largest, ncomp) = sssp_mps::graph::components::component_summary(&labels);
    println!("file              : {input}");
    println!("vertices          : {}", st.num_vertices);
    println!("undirected edges  : {}", st.num_undirected_edges);
    println!("avg degree        : {:.2}", st.avg_degree);
    println!("max degree        : {}", st.max_degree);
    println!("isolated vertices : {}", st.isolated);
    println!("top-1% edge share : {:.2}", st.top1pct_edge_share);
    println!("components        : {ncomp} (largest {largest})");
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let sub = match argv.first().map(String::as_str) {
        Some("run") | Some("generate") | Some("convert") | Some("inspect") => argv.remove(0),
        _ => "run".to_string(),
    };
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_help();
            std::process::exit(2);
        }
    };
    match sub.as_str() {
        "generate" => return cmd_generate(&args),
        "convert" => return cmd_convert(&args),
        "inspect" => return cmd_inspect(&args),
        _ => {}
    }

    let csr = match &args.input {
        Some(path) => CsrBuilder::new().build(&load_edge_list(path)),
        None => build_graph(&args),
    };
    let m = csr.num_undirected_edges() as u64;
    let source = args.input.clone().unwrap_or_else(|| args.family.clone());
    println!(
        "graph: {} with {} vertices, {} edges, max degree {}",
        source,
        csr.num_vertices(),
        m,
        csr.max_degree()
    );

    let dg = if args.split {
        let (dg, rep) = DistGraph::build_auto_split(&csr, args.ranks, args.threads);
        match rep {
            Some(rep) => println!(
                "splitting: {} heavy vertices → {} proxies (max degree {} → {}, π′ = {})",
                rep.heavy_vertices,
                rep.proxies_created,
                rep.max_degree_before,
                rep.max_degree_after,
                rep.threshold
            ),
            None => println!(
                "splitting: trigger armed but max degree {} is within π′ = {}",
                csr.max_degree(),
                sssp_mps::dist::split::auto_threshold(&csr, args.ranks)
            ),
        }
        dg
    } else {
        DistGraph::build(&csr, args.ranks, args.threads)
    };

    // Deterministic root selection over non-isolated vertices.
    let mut roots = Vec::new();
    let mut cursor = args.seed;
    while roots.len() < args.roots {
        cursor = sssp_mps::graph::prng::splitmix64(cursor);
        let v = (cursor % csr.num_vertices() as u64) as u32;
        if csr.degree(v) > 0 && !roots.contains(&v) {
            roots.push(v);
        }
    }

    let model = MachineModel::bgq_like();
    for &root in &roots {
        if args.algo == "bfs" {
            let out = run_bfs(&dg, root, &model);
            if args.validate {
                assert_eq!(out.depth, sssp_mps::core::bfs::seq_bfs(&csr, root));
                println!("root {root}: validated against sequential BFS ✓");
            }
            println!(
                "root {root}: {} levels, {} visited, {} edges examined, {:.4}s simulated, {:.3} GTEPS",
                out.stats.levels.len(),
                out.stats.visited,
                out.stats.edges_examined_total,
                out.stats.ledger.total_s(),
                out.stats.gteps(m)
            );
            continue;
        }
        let cfg = config_for(&args);
        let out = run_sssp(&dg, root, &cfg, &model);
        if args.validate {
            sssp_mps::core::validate::assert_matches_dijkstra(&csr, root, &out);
            println!("root {root}: validated against sequential Dijkstra ✓");
        }
        println!(
            "root {root}: {} reachable, {} buckets, {} phases, {} relaxations, {:.4}s simulated, {:.3} GTEPS",
            out.reachable(),
            out.stats.buckets(),
            out.stats.phases,
            out.stats.relaxations_total(),
            out.stats.ledger.total_s(),
            out.stats.gteps(m)
        );
    }
}
