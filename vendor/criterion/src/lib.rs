//! In-tree stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no network access, so the
//! real criterion cannot be fetched. This shim keeps the workspace's
//! `[[bench]]` targets compiling and runnable with the same source syntax
//! (`criterion_group!` / `criterion_main!` / `benchmark_group` /
//! `bench_with_input`), but replaces the statistical machinery with a
//! simple timed loop:
//!
//! * `cargo bench -- --test` runs every benchmark closure **once** (the CI
//!   smoke mode — exactly what the real criterion does under `--test`);
//! * plain `cargo bench` warms each benchmark once, then reports the mean
//!   of a small fixed number of timed iterations.
//!
//! Filters passed as positional CLI args select benchmarks by substring,
//! like the real harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting a benchmark
/// body. Delegates to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier rendered from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier rendered from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_mean_ns: f64,
}

impl Bencher {
    /// Run `f` for the configured number of iterations and record the mean
    /// wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up (also the only run in --test mode).
        black_box(f());
        if self.iterations == 0 {
            self.last_mean_ns = 0.0;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.iterations as f64;
    }
}

/// Top-level harness state: CLI mode and benchmark filters.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filters: Vec::new(),
            iterations: 3,
        }
    }
}

impl Criterion {
    /// Build from the process CLI arguments (used by `criterion_main!`).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" | "--noplot" | "--quiet" => {}
                s if s.starts_with("--") => {}
                s => c.filters.push(s.to_string()),
            }
        }
        c
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            harness: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let name = name.into();
        self.run_one(&name, f);
        self
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_name: &str, mut f: F) {
        if !self.matches_filter(full_name) {
            return;
        }
        let mut b = Bencher {
            iterations: if self.test_mode { 0 } else { self.iterations },
            last_mean_ns: 0.0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {full_name} ... ok");
        } else {
            println!(
                "{full_name}: {:.1} ns/iter (mean of {})",
                b.last_mean_ns, self.iterations
            );
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    harness: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the shim's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.harness.run_one(&full, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.harness.run_one(&full, |b| f(b, input));
        self
    }

    /// End the group (no-op; kept for source compatibility).
    pub fn finish(self) {}
}

/// Throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Define a benchmark group function from a list of `fn(&mut Criterion)`
/// targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            let _ = $cfg;
            $( $target(c); )+
        }
    };
}

/// Define the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closure() {
        let mut calls = 0u32;
        let mut b = Bencher {
            iterations: 3,
            last_mean_ns: 0.0,
        };
        b.iter(|| calls += 1);
        // 1 warm-up + 3 timed.
        assert_eq!(calls, 4);
    }

    #[test]
    fn filters_select_by_substring() {
        let mut c = Criterion {
            test_mode: true,
            filters: vec!["keep".into()],
            iterations: 0,
        };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("keep_me", |b| b.iter(|| ran.push("keep")));
        }
        assert_eq!(ran, vec!["keep"]);
        let mut ran2 = false;
        c.bench_function("skipped", |b| b.iter(|| ran2 = true));
        assert!(!ran2);
    }
}
