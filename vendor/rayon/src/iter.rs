//! Materialized parallel iterators.
//!
//! A [`ParIter`] owns its items in a `Vec`; adapters transform that vector
//! (in parallel for `map`/`for_each`), so arbitrary adapter chains compose
//! without rayon's consumer/producer machinery. Order is always preserved.

use std::ops::Range;
use std::sync::OnceLock;

/// Resolve the worker-thread count once: `RAYON_NUM_THREADS` if set and
/// positive, otherwise the machine's available parallelism.
pub(crate) fn num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Apply `f` to every item on a pool of scoped threads, preserving order.
/// Falls back to a sequential pass for tiny inputs.
fn par_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let threads = num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk_len).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

/// A parallel iterator over an owned, ordered collection of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Transform every item with `f`, in parallel, preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: par_map_vec(self.items, &f),
        }
    }

    /// Run `f` on every item, in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, &|x| f(x));
    }

    /// Pair every item with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Pair items with another parallel iterator's items, up to the shorter.
    pub fn zip<I: IntoParallelIterator>(self, other: I) -> ParIter<(T, I::Item)> {
        let other = other.into_par_iter();
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Collect the items into any `FromIterator` collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Fold the items pairwise with `op`, or `None` when empty.
    pub fn reduce_with<F: Fn(T, T) -> T + Sync>(self, op: F) -> Option<T> {
        self.items.into_iter().reduce(op)
    }
}

/// Conversion into a [`ParIter`] (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The item type produced.
    type Item: Send;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    fn into_par_iter(self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    fn into_par_iter(self) -> ParIter<&'a mut T> {
        self.as_mut_slice().into_par_iter()
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par_iter!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `.par_iter()` on `&self` (rayon's `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'data> {
    /// The item type produced (a shared reference).
    type Item: Send;
    /// Parallel iterator over shared references.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Item = <&'data I as IntoParallelIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        self.into_par_iter()
    }
}

/// `.par_iter_mut()` on `&mut self` (rayon's `IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'data> {
    /// The item type produced (an exclusive reference).
    type Item: Send;
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item>;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoParallelIterator,
{
    type Item = <&'data mut I as IntoParallelIterator>::Item;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Item> {
        self.into_par_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<u64> = (0..1000).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 + 1));
    }

    #[test]
    fn enumerate_then_map() {
        let v = vec![10u32, 20, 30];
        let out: Vec<(usize, u32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn zip_pairs_in_order() {
        let mut a = vec![0u32; 4];
        let b = vec![1u32, 2, 3, 4];
        a.par_iter_mut()
            .zip(b.into_par_iter())
            .for_each(|(x, y)| *x = y * 10);
        assert_eq!(a, vec![10, 20, 30, 40]);
    }

    #[test]
    fn sum_and_count() {
        let s: u64 = (0..100u64).into_par_iter().sum();
        assert_eq!(s, 4950);
        assert_eq!((0..7u32).into_par_iter().count(), 7);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panic_propagates() {
        (0..100u32).into_par_iter().for_each(|x| {
            if x == 57 {
                panic!("worker boom");
            }
        });
    }
}
