//! In-tree stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment for this repository has no network access, so the
//! real rayon cannot be fetched from crates.io. This vendored shim provides
//! the (small) subset of rayon's data-parallel iterator API the workspace
//! actually uses — `par_iter`, `par_iter_mut`, `into_par_iter` and the
//! `enumerate` / `zip` / `map` / `for_each` / `collect` adapter chain — with
//! genuine parallelism via `std::thread::scope`.
//!
//! Semantics match rayon for the pure, per-item-independent closures the
//! workspace uses: results are returned in input order, panics in worker
//! closures propagate to the caller, and `zip` pairs items up to the shorter
//! input. The one observable difference is that adapters here are *eager*
//! (each `map` materializes its output), which is fine for pipeline-free
//! call sites but would change behavior for closures with side effects that
//! depend on global evaluation order — none exist in this workspace, and the
//! `sssp-lint` gate keeps hot-path closures free of shared mutable state.
//!
//! Thread-count control: `RAYON_NUM_THREADS` is honored (like the real
//! rayon); otherwise `std::thread::available_parallelism()` is used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iter;

/// The traits and types needed to call `.par_iter()` & friends.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

/// Number of worker threads a parallel pass will use.
pub fn current_num_threads() -> usize {
    iter::num_threads()
}
