//! In-tree stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no network access, so the
//! real proptest cannot be fetched. This shim implements the subset of the
//! API the workspace's property tests use, with the same surface syntax:
//!
//! * the [`proptest!`] macro (optionally with `#![proptest_config(..)]`),
//! * [`Strategy`](strategy::Strategy) with `prop_map` / `prop_flat_map`,
//! * range, tuple and [`Just`](strategy::Just) strategies,
//! * [`any`](arbitrary::any) for primitive types and
//!   [`sample::Index`](sample::Index),
//! * [`collection::vec`](collection::vec),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from the real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case number and the
//!   deterministic per-case seed instead of a minimized input.
//! * **Deterministic generation.** Case `i` of test `t` derives its RNG
//!   from `hash(module_path::t, i)` — reruns always exercise identical
//!   inputs, so a red test is reproducible by name alone.
//! * Default case count is 128 (configurable per block via
//!   `ProptestConfig::with_cases`, or globally via the `PROPTEST_CASES`
//!   environment variable).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The real proptest's prelude re-exports the crate root as `prop`
    /// (enabling `prop::sample::Index` etc.).
    pub use crate as prop;
}

/// Run a block of property tests.
///
/// Accepts the same surface syntax as the real proptest:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in arb_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = ($cfg:expr);
     $( #[test] $(#[$attr:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let cases = cfg.effective_cases();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name),
                            case + 1,
                            cases,
                            $crate::test_runner::TestRng::seed_for_case(
                                concat!(module_path!(), "::", stringify!($name)),
                                case,
                            ),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), l, r
                ),
            ));
        }
    }};
}

/// Fail the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
