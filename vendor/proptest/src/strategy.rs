//! Value-generation strategies.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it
    /// (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Box the strategy (real-proptest compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// References to strategies are strategies (lets tuples borrow).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.next_below(span) as $t
            }
        }
    )*};
}
impl_uint_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy {:?}", self);
        self.start + rng.next_below(self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.next_below(span) as i64) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy::ranges", 0);
        for _ in 0..2000 {
            let a = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&a));
            let b = (0usize..1).generate(&mut rng);
            assert_eq!(b, 0);
            let c = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&c));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_case("strategy::compose", 0);
        let s = (1usize..10).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..500 {
            let (n, k) = s.generate(&mut rng);
            assert!(k < n);
        }
        let doubled = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut rng = TestRng::for_case("strategy::tuples", 0);
        let (a, b, c) = (0u32..4, 10u64..20, Just("x")).generate(&mut rng);
        assert!(a < 4);
        assert!((10..20).contains(&b));
        assert_eq!(c, "x");
    }
}
