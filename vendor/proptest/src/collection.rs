//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for a `Vec` whose length is uniform in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_bounds() {
        let mut rng = TestRng::for_case("collection::vec", 0);
        let s = vec(0u32..10, 2..7);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
