//! Deterministic case generation and failure reporting.

use std::fmt;

/// Error returned by `prop_assert*` (or via `?`) from inside a property
/// body; carries the failure message shown in the panic.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Real-proptest-compatible alias of [`TestCaseError::fail`].
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-block configuration. Only the case count is honored by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(n) if n > 0 => n,
            _ => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// SplitMix64: tiny, fast, full-period; good enough for test-case
/// generation and trivially reproducible from a printed seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name` (deterministic).
    pub fn for_case(name: &str, case: u32) -> Self {
        TestRng {
            state: Self::seed_for_case(name, case),
        }
    }

    /// The seed `for_case` starts from, for failure reporting.
    pub fn seed_for_case(name: &str, case: u32) -> u64 {
        // FNV-1a over the name, then mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift mapping (Lemire); bias is irrelevant for tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t::x", 3);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t::x", 3);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::for_case("t::x", 4).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = TestRng::for_case("t::bounds", 0);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }
}
