//! Sampling helpers (`prop::sample::Index`).

/// A collection-size-independent random index: generate once, project onto
/// any non-empty length with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Wrap a raw random value.
    pub fn new(raw: usize) -> Self {
        Index(raw)
    }

    /// Project onto `[0, len)`. Panics if `len == 0` (like the real
    /// proptest).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.0 % len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_modular() {
        assert_eq!(Index::new(12).index(5), 2);
        assert_eq!(Index::new(3).index(1), 0);
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_len_panics() {
        Index::new(7).index(0);
    }
}
