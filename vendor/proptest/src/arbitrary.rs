//! `any::<T>()` — the canonical strategy for a type.

use crate::sample::Index;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (use as `any::<u32>()`).
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategy returned by [`any`].
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index::new(rng.next_u64() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::for_case("arbitrary::bool", 0);
        let s = any::<bool>();
        let vals: Vec<bool> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }

    #[test]
    fn any_index_projects_into_len() {
        let mut rng = TestRng::for_case("arbitrary::index", 0);
        let s = any::<Index>();
        for _ in 0..1000 {
            let ix = s.generate(&mut rng);
            assert!(ix.index(13) < 13);
        }
    }
}
