//! End-to-end exercise of the `proptest!` surface syntax this shim must
//! support, including the negative case (a false property must panic).

use proptest::prelude::*;

fn arb_pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
    (1usize..8).prop_flat_map(|n| {
        let items = proptest::collection::vec(0u32..100, 0..20);
        (Just(n), items)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ranges_and_tuples(a in 0u32..10, (n, items) in arb_pair()) {
        prop_assert!(a < 10);
        prop_assert!((1..8).contains(&n));
        prop_assert!(items.len() < 20);
        for &x in &items {
            prop_assert!(x < 100, "element {} out of range", x);
        }
    }

    #[test]
    fn any_and_index(x in any::<u32>(), flag in any::<bool>(), ix in any::<prop::sample::Index>()) {
        let len = (x % 50 + 1) as usize;
        prop_assert!(ix.index(len) < len);
        prop_assert_eq!(flag, flag);
    }

    #[test]
    fn question_mark_propagates(v in proptest::collection::vec(0u64..5, 1..10)) {
        fn helper(v: &[u64]) -> Result<(), TestCaseError> {
            prop_assert!(v.iter().all(|&x| x < 5));
            Ok(())
        }
        helper(&v)?;
    }
}

mod failing {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        #[should_panic(expected = "property `always_fails` failed")]
        fn always_fails(x in 0u32..100) {
            prop_assert!(x > 1000, "x was {}", x);
        }
    }
}
