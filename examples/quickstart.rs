//! Quickstart: generate a Graph 500 style R-MAT graph, distribute it over a
//! simulated cluster, run the paper's OPT algorithm and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sssp_mps::prelude::*;

fn main() {
    // A scale-14 RMAT-1 graph (Graph 500 BFS spec): 2^14 vertices, 16 edges
    // per vertex, uniform integer weights in [1, 255].
    let scale = 14;
    let el = RmatGenerator::new(RmatParams::RMAT1, scale, 16)
        .seed(42)
        .generate_weighted(255);
    let csr = CsrBuilder::new().build(&el);
    println!(
        "graph: scale {scale}, {} vertices, {} undirected edges, max degree {}",
        csr.num_vertices(),
        csr.num_undirected_edges(),
        csr.max_degree()
    );

    // Distribute over 8 simulated ranks, 4 logical threads each — the same
    // execution model as the paper's Blue Gene/Q runs, in miniature.
    let dg = DistGraph::build(&csr, 8, 4);

    // OPT-25 = Δ-stepping (Δ=25) + IOS + push/pull pruning + hybridization.
    let cfg = SsspConfig::opt(25);
    let model = MachineModel::bgq_like();
    let out = run_sssp(&dg, 0, &cfg, &model);

    println!("\nrun summary:");
    println!("  reachable vertices : {}", out.reachable());
    println!("  buckets processed  : {}", out.stats.buckets());
    println!("  phases             : {}", out.stats.phases);
    println!("  relaxations        : {}", out.stats.relaxations_total());
    println!(
        "  cross-rank msgs    : {}",
        out.stats.comm.total_remote_msgs()
    );
    println!("  simulated time     : {:.4} s", out.stats.ledger.total_s());
    println!(
        "  simulated GTEPS    : {:.3}",
        out.stats.gteps(csr.num_undirected_edges() as u64)
    );

    // Every distributed result is easy to validate against textbook Dijkstra.
    let reference = seq::dijkstra(&csr, 0);
    assert_eq!(
        out.distances, reference,
        "distributed result must match Dijkstra"
    );
    println!("\nvalidated: distances identical to sequential Dijkstra ✓");

    // Sample a few shortest distances.
    println!("\nsample distances from root 0:");
    for v in [1u32, 100, 1000, 10000] {
        let d = out.dist(v);
        if d == u64::MAX {
            println!("  d(0 → {v}) = unreachable");
        } else {
            println!("  d(0 → {v}) = {d}");
        }
    }
}
