//! The full network-analysis toolbox on one graph: connected components,
//! PageRank, sampled betweenness and harmonic closeness — every kernel
//! running on the same simulated cluster the SSSP reproduction is built on.
//!
//! ```sh
//! cargo run --release --example analytics_suite
//! ```

use sssp_mps::core::betweenness::betweenness_sampled;
use sssp_mps::core::cc::run_cc;
use sssp_mps::core::closeness::harmonic_closeness_sampled;
use sssp_mps::core::pagerank::{run_pagerank, PageRankConfig};
use sssp_mps::prelude::*;

fn main() {
    let el = RmatGenerator::new(RmatParams::RMAT2, 11, 16)
        .seed(3)
        .generate_weighted(255);
    let csr = CsrBuilder::new().build(&el);
    let dg = DistGraph::build(&csr, 8, 4);
    let model = MachineModel::bgq_like();
    println!(
        "graph: {} vertices, {} edges\n",
        csr.num_vertices(),
        csr.num_undirected_edges()
    );

    // 1. Components.
    let cc = run_cc(&dg, &model);
    println!(
        "components: {} ({} label-propagation rounds)",
        cc.num_components(),
        cc.rounds
    );

    // 2. PageRank.
    let pr = run_pagerank(&dg, &PageRankConfig::default(), &model);
    let mut by_rank: Vec<u32> = csr.vertices().collect();
    by_rank.sort_by(|&a, &b| pr.scores[b as usize].total_cmp(&pr.scores[a as usize]));
    println!(
        "pagerank: converged in {} iterations; top vertex {} (score {:.5}, degree {})",
        pr.iterations,
        by_rank[0],
        pr.scores[by_rank[0] as usize],
        csr.degree(by_rank[0])
    );

    // 3. Sampled shortest-path centralities (each sample = one distributed
    //    SSSP run).
    let sources: Vec<u32> = (0..8)
        .map(|i| by_rank[i * 37 % by_rank.len()])
        .filter(|&v| csr.degree(v) > 0)
        .collect();
    let bt = betweenness_sampled(&csr, &dg, &sources, &SsspConfig::opt(25), &model);
    let cl = harmonic_closeness_sampled(&dg, &sources, &SsspConfig::opt(25), &model);
    let top_bt = csr
        .vertices()
        .max_by(|&a, &b| bt[a as usize].total_cmp(&bt[b as usize]))
        .unwrap();
    let top_cl = csr
        .vertices()
        .max_by(|&a, &b| cl[a as usize].total_cmp(&cl[b as usize]))
        .unwrap();
    println!(
        "betweenness (sampled from {} sources): top vertex {} (degree {})",
        sources.len(),
        top_bt,
        csr.degree(top_bt)
    );
    println!(
        "harmonic closeness: top vertex {} (degree {})",
        top_cl,
        csr.degree(top_cl)
    );

    // The three rankings should all point at well-connected hubs.
    let avg = csr.num_directed_edges() as f64 / csr.num_vertices() as f64;
    for (name, v) in [
        ("pagerank", by_rank[0]),
        ("betweenness", top_bt),
        ("closeness", top_cl),
    ] {
        assert!(
            csr.degree(v) as f64 > avg,
            "{name} top vertex should be above average degree"
        );
    }
    println!("\nall three centralities point at above-average-degree hubs ✓");
}
