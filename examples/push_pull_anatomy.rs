//! Anatomy of the direction-optimization decision (§III-B/C): trace, bucket
//! by bucket, what the decision heuristic estimated, which mechanism it
//! picked, and what traffic the long-edge phase actually moved.
//!
//! ```sh
//! cargo run --release --example push_pull_anatomy
//! ```

use sssp_mps::core::config::LongPhaseMode;
use sssp_mps::prelude::*;

fn main() {
    let el = RmatGenerator::new(RmatParams::RMAT1, 14, 16)
        .seed(99)
        .generate_weighted(255);
    let csr = CsrBuilder::new().build(&el);
    let dg = DistGraph::build(&csr, 8, 4);
    let model = MachineModel::bgq_like();

    // Pruning without hybridization, so every bucket shows up in the trace.
    let cfg = SsspConfig::prune(25);
    let out = run_sssp(&dg, 0, &cfg, &model);

    println!(
        "{:>7} {:>9} {:>12} {:>12} {:>6} {:>12} {:>12}",
        "bucket", "settled", "est push", "est pull", "mode", "push msgs", "pull msgs"
    );
    println!("{}", "-".repeat(78));
    for r in &out.stats.bucket_records {
        let push_actual = r.self_edges + r.backward_edges + r.forward_edges;
        let pull_actual = r.requests + r.responses;
        println!(
            "{:>7} {:>9} {:>12} {:>12} {:>6} {:>12} {:>12}",
            r.bucket,
            r.settled,
            r.est_push,
            r.est_pull,
            match r.mode {
                LongPhaseMode::Push => "push",
                LongPhaseMode::Pull => "pull",
            },
            push_actual,
            pull_actual
        );
    }

    let pushes = out
        .stats
        .bucket_records
        .iter()
        .filter(|r| r.mode == LongPhaseMode::Push)
        .count();
    println!(
        "\n{} buckets: {} push / {} pull. Dense early buckets push (requests would",
        out.stats.bucket_records.len(),
        pushes,
        out.stats.bucket_records.len() - pushes
    );
    println!("flood in from every unsettled vertex); sparse late buckets pull (most");
    println!("push messages would target already-settled vertices).");
}
