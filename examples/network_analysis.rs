//! The application the paper opens with: complex-network analysis via
//! shortest paths. Computes sampled betweenness centrality (Brandes) over a
//! scale-free graph, driving one distributed SSSP per sampled source, and
//! reports the most central vertices against their degrees.
//!
//! ```sh
//! cargo run --release --example network_analysis
//! ```

use sssp_mps::core::betweenness::betweenness_sampled;
use sssp_mps::prelude::*;

fn main() {
    let el = RmatGenerator::new(RmatParams::RMAT1, 11, 16)
        .seed(5)
        .generate_weighted(255);
    let csr = CsrBuilder::new().build(&el);
    let dg = DistGraph::build(&csr, 8, 4);
    println!(
        "graph: {} vertices, {} edges",
        csr.num_vertices(),
        csr.num_undirected_edges()
    );

    // Sample 16 sources (Brandes–Pich style approximation).
    let sources: Vec<u32> = {
        let mut s = Vec::new();
        let mut x = 42u64;
        while s.len() < 16 {
            x = sssp_mps::graph::prng::splitmix64(x);
            let v = (x % csr.num_vertices() as u64) as u32;
            if csr.degree(v) > 0 && !s.contains(&v) {
                s.push(v);
            }
        }
        s
    };

    let t0 = std::time::Instant::now();
    let centrality = betweenness_sampled(
        &csr,
        &dg,
        &sources,
        &SsspConfig::opt(25),
        &MachineModel::bgq_like(),
    );
    println!(
        "sampled betweenness from {} sources in {:?} ({} SSSP runs on the simulated cluster)",
        sources.len(),
        t0.elapsed(),
        sources.len()
    );

    let mut ranked: Vec<u32> = csr.vertices().collect();
    ranked.sort_unstable_by(|&a, &b| centrality[b as usize].total_cmp(&centrality[a as usize]));

    println!("\ntop 10 vertices by estimated betweenness:");
    println!("{:>10} {:>16} {:>8}", "vertex", "centrality", "degree");
    for &v in ranked.iter().take(10) {
        println!(
            "{:>10} {:>16.1} {:>8}",
            v,
            centrality[v as usize],
            csr.degree(v)
        );
    }

    // Hubs should dominate the centrality ranking on a scale-free graph.
    let avg_deg = csr.num_directed_edges() as f64 / csr.num_vertices() as f64;
    let top_avg: f64 = ranked
        .iter()
        .take(10)
        .map(|&v| csr.degree(v) as f64)
        .sum::<f64>()
        / 10.0;
    println!(
        "\nmean degree of the top 10: {top_avg:.0} (graph average {avg_deg:.0}) — \
         hubs mediate most shortest paths."
    );
}
