//! The §IV-H scenario: shortest paths over a social network.
//!
//! Uses the Chung–Lu stand-in for the Orkut graph (matched vertex/edge
//! counts and degree skew at 1/512 of the published size) and compares the
//! baseline Δ-stepping against the fully optimized algorithm — the paper
//! reports a ≈ 2× win for OPT on all three social graphs it tests.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use sssp_mps::graph::social::social_preset;
use sssp_mps::graph::stats::degree_stats;
use sssp_mps::prelude::*;

fn main() {
    let gen = social_preset("orkut", 512).expect("orkut preset");
    let csr = CsrBuilder::new().build(&gen.seed(2024).generate());
    let st = degree_stats(&csr);
    println!(
        "orkut stand-in: {} vertices, {} edges, max degree {} ({}x the mean)",
        st.num_vertices,
        st.num_undirected_edges,
        st.max_degree,
        (st.max_degree as f64 / st.avg_degree).round()
    );

    let dg = DistGraph::build(&csr, 16, 4);
    let model = MachineModel::bgq_like();
    let m = csr.num_undirected_edges() as u64;

    // Paper setting for the social graphs: Δ = 40 is best for both.
    let roots: Vec<u32> = (0..4)
        .map(|i| {
            let v = (i * 131 + 17) % csr.num_vertices() as u32;
            assert!(csr.degree(v) > 0, "picked isolated root");
            v
        })
        .collect();

    let mut del_gteps = 0.0;
    let mut opt_gteps = 0.0;
    for &root in &roots {
        let del = run_sssp(&dg, root, &SsspConfig::del(40), &model);
        let opt = run_sssp(&dg, root, &SsspConfig::lb_opt(40), &model);
        assert_eq!(del.distances, opt.distances);
        del_gteps += del.stats.gteps(m);
        opt_gteps += opt.stats.gteps(m);
    }
    del_gteps /= roots.len() as f64;
    opt_gteps /= roots.len() as f64;

    println!("\naveraged over {} roots:", roots.len());
    println!("  Del-40 : {del_gteps:.3} simulated GTEPS");
    println!("  Opt-40 : {opt_gteps:.3} simulated GTEPS");
    println!(
        "  speedup: {:.2}x (paper reports ≈ 2x)",
        opt_gteps / del_gteps
    );
}
