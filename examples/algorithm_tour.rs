//! A tour of every algorithm in the paper on one graph: Dijkstra,
//! Bellman-Ford, Δ-stepping, and the progressively optimized variants
//! (IOS → pruning → hybridization → load balancing), showing how each
//! optimization trades work against phases — the tension at the heart of
//! the paper.
//!
//! ```sh
//! cargo run --release --example algorithm_tour
//! ```

use sssp_mps::core::config::IntraBalance;
use sssp_mps::prelude::*;

fn main() {
    let el = RmatGenerator::new(RmatParams::RMAT1, 13, 16)
        .seed(7)
        .generate_weighted(255);
    let csr = CsrBuilder::new().build(&el);
    let dg = DistGraph::build(&csr, 8, 4);
    let model = MachineModel::bgq_like();
    let m = csr.num_undirected_edges() as u64;

    let variants: Vec<(&str, SsspConfig)> = vec![
        ("Dijkstra (Δ=1)", SsspConfig::dijkstra()),
        ("Bellman-Ford (Δ=∞)", SsspConfig::bellman_ford()),
        ("Del-25 (classified Δ-stepping)", SsspConfig::del(25)),
        ("Del-25 + IOS", SsspConfig::del(25).with_ios(true)),
        ("Prune-25 (+ push/pull)", SsspConfig::prune(25)),
        ("OPT-25 (+ hybrid τ=0.4)", SsspConfig::opt(25)),
        (
            "LB-OPT-25 (+ thread balancing)",
            SsspConfig::opt(25).with_intra_balance(IntraBalance::Auto),
        ),
    ];

    println!(
        "{:<34} {:>12} {:>8} {:>8} {:>10} {:>8}",
        "algorithm", "relaxations", "buckets", "phases", "sim time", "GTEPS"
    );
    println!("{}", "-".repeat(86));
    let mut reference: Option<Vec<u64>> = None;
    for (name, cfg) in variants {
        let out = run_sssp(&dg, 0, &cfg, &model);
        match &reference {
            None => reference = Some(out.distances.clone()),
            Some(r) => assert_eq!(&out.distances, r, "{name} disagrees"),
        }
        println!(
            "{:<34} {:>12} {:>8} {:>8} {:>9.4}s {:>8.3}",
            name,
            out.stats.relaxations_total(),
            out.stats.buckets(),
            out.stats.phases,
            out.stats.ledger.total_s(),
            out.stats.gteps(m)
        );
    }
    println!("\nAll variants produce identical distances; they differ only in");
    println!("how much work and how many synchronized phases they spend.");
}
