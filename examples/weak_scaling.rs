//! A miniature of the paper's weak-scaling methodology: fix the number of
//! vertices per rank, grow the rank count, and watch the simulated GTEPS of
//! the baseline and optimized algorithms diverge — including the effect of
//! the two-tier load balancing on the heavily skewed RMAT-1 family.
//!
//! ```sh
//! cargo run --release --example weak_scaling
//! ```

use sssp_mps::dist::split_heavy_vertices;
use sssp_mps::prelude::*;

fn main() {
    let scale_per_rank = 10u32; // paper: 23
    let model = MachineModel::bgq_like();

    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>14}",
        "ranks", "scale", "Del-25", "OPT-25", "LB-OPT+split"
    );
    println!("{}", "-".repeat(52));
    for p in [2usize, 4, 8, 16, 32] {
        let scale = scale_per_rank + (p as f64).log2() as u32;
        let el = RmatGenerator::new(RmatParams::RMAT1, scale, 16)
            .seed(1)
            .generate_weighted(255);
        let csr = CsrBuilder::new().build(&el);
        let m = csr.num_undirected_edges() as u64;
        let root = csr.vertices().find(|&v| csr.degree(v) > 0).unwrap();

        let dg = DistGraph::build(&csr, p, 4);
        let del = run_sssp(&dg, root, &SsspConfig::del(25), &model);
        let opt = run_sssp(&dg, root, &SsspConfig::opt(25), &model);

        // Two-tier balancing: split extreme-degree hubs across ranks, then
        // balance threads within each rank.
        let threshold = sssp_mps::dist::split::auto_threshold(&csr, p);
        let (split_csr, part, _) = split_heavy_vertices(&csr, p, threshold);
        let dg_split = DistGraph::build_with_partition(&split_csr, part, 4, m);
        let lb = run_sssp(&dg_split, root, &SsspConfig::lb_opt(25), &model);

        assert_eq!(del.distances, opt.distances);
        assert_eq!(
            &lb.distances[..csr.num_vertices()],
            &del.distances[..],
            "splitting must preserve distances"
        );

        println!(
            "{:>6} {:>6} {:>10.3} {:>10.3} {:>14.3}",
            p,
            scale,
            del.stats.gteps(m),
            opt.stats.gteps(m),
            lb.stats.gteps(m)
        );
    }
    println!("\nPaper shape: OPT ≫ Del everywhere; on this skewed family the");
    println!("load-balanced variant keeps scaling after plain OPT flattens out.");
}
